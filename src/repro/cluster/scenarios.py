"""Cluster chaos scenarios: deterministic multi-site workloads.

The single-site chaos registry drives a :class:`~repro.chaos.stack.ChaosStack`;
these drive a whole :class:`~repro.cluster.cluster.Cluster`.  The same
determinism contract applies — a scenario is a pure function of the
fault plan, so a message-step sweep replays the identical workload once
per numbered step and a failing plan is a reproduction recipe.

Each spec names the sites it needs and, for the partition sweeps, the
canonical ways to split them.  The ``repro.chaos.replay`` command line
resolves cluster scenarios through :data:`CLUSTER_SCENARIOS` exactly as
it resolves single-site ones through the chaos registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.dependency import DependencyType

__all__ = ["ClusterScenarioSpec", "CLUSTER_SCENARIOS", "get", "names", "register"]


@dataclass(frozen=True)
class ClusterScenarioSpec:
    """A named deterministic multi-site workload."""

    name: str
    description: str
    drive: object  # callable(cluster) -> None
    sites: tuple = ("alpha", "beta", "gamma")
    # Canonical splits for the partition sweep: tuples of site-name
    # groups.  Default: isolate each site in turn.
    partitions: tuple = ()

    def build(self, plan=None, **options):
        return Cluster(sites=self.sites, plan=plan, **options)

    def partition_splits(self):
        if self.partitions:
            return self.partitions
        rest = tuple(self.sites)
        return tuple(
            ((name,), tuple(s for s in rest if s != name)) for name in rest
        )


CLUSTER_SCENARIOS = {}


def register(name, description, sites=("alpha", "beta", "gamma"), partitions=()):
    """Decorator: register ``drive`` under ``name``."""

    def wrap(drive):
        CLUSTER_SCENARIOS[name] = ClusterScenarioSpec(
            name=name,
            description=description,
            drive=drive,
            sites=tuple(sites),
            partitions=tuple(partitions),
        )
        return drive

    return wrap


def get(name):
    try:
        return CLUSTER_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown cluster scenario {name!r}; known: {sorted(CLUSTER_SCENARIOS)}"
        ) from None


def names():
    return sorted(CLUSTER_SCENARIOS)


# ---------------------------------------------------------------------------
# program bodies (run inside a site's cooperative runtime)
# ---------------------------------------------------------------------------


def _account_body(tag):
    """Create an account and deposit into it; completes, never commits —
    termination belongs to the global group."""

    def body(tx):
        oid = yield tx.create(tag + b"0", name=tag.decode())
        yield tx.write(oid, tag + b"1")
        return oid

    return body


# ---------------------------------------------------------------------------
# EX18 scenarios
# ---------------------------------------------------------------------------


@register(
    "cluster_group_commit",
    "one component per site, GC-linked across the fabric, committed by"
    " presumed-abort 2PC with the first site coordinating (EX18 happy path)",
)
def cluster_group_commit(cluster):
    refs = [
        cluster.spawn_at(name, _account_body(name.encode()))
        for name in sorted(cluster.sites)
    ]
    cluster.link_group(refs)
    return cluster.group_commit(refs)


@register(
    "cluster_abort_propagation",
    "a GC-linked cross-site group where the console aborts one member"
    " before the vote: the abort must propagate over the proxy web and"
    " the global commit must refuse",
)
def cluster_abort_propagation(cluster):
    names_ = sorted(cluster.sites)
    refs = [cluster.spawn_at(name, _account_body(name.encode())) for name in names_]
    for ref in refs:
        cluster.wait(ref)
    cluster.link_group(refs)
    cluster.abort(refs[1], reason="console abort before vote")
    cluster.settle(8)  # let the abort ripple across the proxy web
    return cluster.group_commit(refs)


@register(
    "cluster_delegation_handoff",
    "a giver delegates its account to a remote receiver (giver-site log"
    " attributes undo to the receiver's proxy), the receiver writes at"
    " the giver's site under a cross-site permit, then the pair group-"
    "commits by 2PC",
    sites=("alpha", "beta"),
)
def cluster_delegation_handoff(cluster):
    giver_site, receiver_site = sorted(cluster.sites)
    giver = cluster.spawn_at(giver_site, _account_body(b"g"))
    receiver = cluster.spawn_at(receiver_site, _account_body(b"r"))
    cluster.wait(giver)
    cluster.wait(receiver)
    cluster.form_dependency(DependencyType.GC, giver, receiver)
    oid = cluster.result_of(giver)
    cluster.permit(giver, receiver)
    cluster.delegate(giver, receiver, oids=[oid])
    cluster.write_as(receiver, giver_site, oid, b"g2")
    return cluster.group_commit([giver, receiver], coordinator=receiver_site)


# ---------------------------------------------------------------------------
# EX21 scenario: membership churn under a placed workload
# ---------------------------------------------------------------------------


@register(
    "cluster_membership_churn",
    "a placed workload while membership churns: delta joins (epoch bump"
    " rebalances the shard ranges), beta leaves handing its in-flight"
    " transactions to delta by delegation, then one component per"
    " surviving member group-commits across the new membership",
    sites=("alpha", "beta", "gamma"),
)
def cluster_membership_churn(cluster):
    # Routed work under the initial membership; acct-2/acct-3 place on
    # beta, so the leave below has live transactions to hand over.
    keys = [f"acct-{i}" for i in range(4)]
    placed = [
        cluster.spawn_placed(key, _account_body(key.encode())) for key in keys
    ]
    for ref in placed:
        cluster.wait(ref)
    cluster.join_site("delta")
    cluster.leave_site("beta", "delta")
    # Routes resolved before the churn are now stale; spawn_placed
    # re-resolves against the bumped epoch.
    post = cluster.spawn_placed("acct-post", _account_body(b"post"))
    cluster.wait(post)
    group = [
        cluster.spawn_at(name, _account_body(name.encode() + b"!"))
        for name in sorted(cluster.membership)
    ]
    cluster.link_group(group)
    return cluster.group_commit(group)
