"""Message-step fault sweeps over cluster scenarios.

The cross-site analogue of :mod:`repro.chaos.sweep`: a probe run with a
no-op plan numbers every fabric message (step kind ``net_msg``); the
sweep then replays the scenario once per step per fault shape —

* **drop / duplicate / delay** the message at that step;
* **crash a site** the moment that step is sent (power cut: volatile
  state and the unflushed log tail are gone);
* **install a partition** at that step and heal it a fixed number of
  steps later.

After the faulted run, the harness models the operator fixing the world
— heal the partition, disarm the plan, restart every down site — and
gives the cluster its convergence rounds.  Then the durable logs are
judged by the cross-site atomicity and convergence oracles.  Every
verdict carries its plan, so a failure is a one-line reproduction
recipe for ``repro.chaos.replay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.faults import NET_MSG, FaultPlan
from repro.common.errors import AssetError

__all__ = [
    "ClusterRunResult",
    "message_fault_sweep",
    "probe_message_steps",
    "run_cluster_plan",
    "partition_sweep",
    "site_crash_sweep",
]


@dataclass
class ClusterRunResult:
    """One faulted cluster run, judged."""

    plan: FaultPlan
    report: object
    converged: bool
    driver_error: str = ""
    analyses: dict = field(default_factory=dict)
    step: int = None
    detail: str = ""
    cluster: object = None

    @property
    def ok(self):
        return self.converged and self.report.ok

    def describe(self):
        state = "OK" if self.ok else "FAILED"
        step = f" step={self.step}" if self.step is not None else ""
        extra = f" [{self.detail}]" if self.detail else ""
        return f"{state} {self.plan.describe()}{step}{extra}"


def probe_message_steps(spec, **options):
    """Dry-run the scenario and return its message-step universe.

    Returns ``[(number, detail), ...]`` — the numbered ``net_msg`` steps
    of a fault-free run, with ``src->dst:kind`` labels.  Deterministic
    prefix property: in a swept run, every step *before* the faulted one
    is the same message as in this probe.
    """
    cluster = spec.build(plan=FaultPlan(), **options)
    spec.drive(cluster)
    cluster.converge()
    return [
        (step.number, step.detail)
        for step in cluster.injector.trace
        if step.kind == NET_MSG
    ]


def run_cluster_plan(
    spec, plan, converge_rounds=240, step=None, detail="",
    instrument=None, **options,
):
    """Drive the scenario under ``plan``, then recover and judge.

    The driver (console) half is allowed to fail — a crashed coordinator
    or a severed link can starve its RPCs — and the error is recorded,
    not raised: the oracles judge what the *sites* did, and the whole
    point of presumed abort is that the cluster settles without the
    console's help.

    ``instrument`` is called with the freshly built cluster before the
    scenario drives it — the hook ``repro.obs`` (and the replay CLI's
    ``--metrics-out``/``--trace-out``) uses to attach observers.
    """
    cluster = spec.build(plan=plan, **options)
    if instrument is not None:
        instrument(cluster)
    driver_error = ""
    try:
        spec.drive(cluster)
    except AssetError as exc:
        driver_error = f"{type(exc).__name__}: {exc}"
    # The operator repairs the world; the protocol must do the rest.
    cluster.injector.disarm()
    cluster.heal()
    cluster.restart_down_sites()
    converged = cluster.converge(converge_rounds)
    report, analyses = cluster.evaluate(label=plan.describe() or "no-fault")
    return ClusterRunResult(
        plan=plan,
        report=report,
        converged=converged,
        driver_error=driver_error,
        analyses=analyses,
        step=step,
        detail=detail,
        cluster=cluster,
    )


def _swept(spec, steps, limit):
    if steps is None:
        steps = probe_message_steps(spec)
    if limit is not None:
        steps = steps[:limit]
    return steps


def message_fault_sweep(
    spec, faults=("drop",), steps=None, limit=None, **options
):
    """One run per (message step, fault shape); returns the verdicts."""
    field_of = {
        "drop": "drop_msg_at",
        "duplicate": "dup_msg_at",
        "delay": "delay_msg_at",
    }
    results = []
    for number, detail in _swept(spec, steps, limit):
        for fault in faults:
            plan = FaultPlan(**{field_of[fault]: {number}})
            results.append(
                run_cluster_plan(
                    spec, plan, step=number, detail=f"{fault} {detail}", **options
                )
            )
    return results


def site_crash_sweep(spec, victims=None, steps=None, limit=None, **options):
    """Power-cut each victim site at every message step.

    The canonical victim is the coordinator — the only process whose
    loss can strand a prepared participant — but sweeping every site
    also exercises participant-crash recovery (the in-doubt path).
    """
    victims = tuple(victims) if victims is not None else tuple(spec.sites)
    results = []
    for number, detail in _swept(spec, steps, limit):
        for victim in victims:
            plan = FaultPlan(site_crash_at=(victim, number))
            results.append(
                run_cluster_plan(
                    spec,
                    plan,
                    step=number,
                    detail=f"crash {victim} at {detail}",
                    **options,
                )
            )
    return results


def partition_sweep(
    spec, splits=None, steps=None, limit=None, heal_after=16, **options
):
    """Install each canonical split at every message step, heal later.

    ``heal_after`` is in message-step numbers: retries and inquiries
    keep the step counter moving during the partition, so the heal
    always fires — after which the convergence oracle demands every
    member settle.
    """
    splits = tuple(splits) if splits is not None else spec.partition_splits()
    results = []
    for number, detail in _swept(spec, steps, limit):
        for split in splits:
            plan = FaultPlan(
                partition_at=number,
                heal_at=number + heal_after,
                partition_groups=split,
            )
            label = "|".join(",".join(group) for group in split)
            results.append(
                run_cluster_plan(
                    spec,
                    plan,
                    step=number,
                    detail=f"partition {label} at {detail}",
                    **options,
                )
            )
    return results
