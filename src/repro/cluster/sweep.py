"""Message-step fault sweeps over cluster scenarios.

The cross-site analogue of :mod:`repro.chaos.sweep`: a probe run with a
no-op plan numbers every fabric message (step kind ``net_msg``); the
sweep then replays the scenario once per step per fault shape —

* **drop / duplicate / delay** the message at that step;
* **crash a site** the moment that step is sent (power cut: volatile
  state and the unflushed log tail are gone);
* **install a partition** at that step and heal it a fixed number of
  steps later.

After the faulted run, the harness models the operator fixing the world
— heal the partition, disarm the plan, restart every down site — and
gives the cluster its convergence rounds.  Then the durable logs are
judged by the cross-site atomicity and convergence oracles.  Every
verdict carries its plan, so a failure is a one-line reproduction
recipe for ``repro.chaos.replay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.faults import NET_MSG, FaultPlan
from repro.common.errors import AssetError

__all__ = [
    "ClusterRunResult",
    "coordinator_death_sweep",
    "join_sweep",
    "leave_sweep",
    "message_fault_sweep",
    "probe_message_steps",
    "probe_plan_steps",
    "release_blackout_sweep",
    "run_cluster_plan",
    "run_failover_plan",
    "partition_sweep",
    "site_crash_sweep",
    "takeover_death_sweep",
]


@dataclass
class ClusterRunResult:
    """One faulted cluster run, judged."""

    plan: FaultPlan
    report: object
    converged: bool
    driver_error: str = ""
    analyses: dict = field(default_factory=dict)
    step: int = None
    detail: str = ""
    cluster: object = None

    @property
    def ok(self):
        return self.converged and self.report.ok

    def describe(self):
        state = "OK" if self.ok else "FAILED"
        step = f" step={self.step}" if self.step is not None else ""
        extra = f" [{self.detail}]" if self.detail else ""
        return f"{state} {self.plan.describe()}{step}{extra}"


def probe_message_steps(spec, **options):
    """Dry-run the scenario and return its message-step universe.

    Returns ``[(number, detail), ...]`` — the numbered ``net_msg`` steps
    of a fault-free run, with ``src->dst:kind`` labels.  Deterministic
    prefix property: in a swept run, every step *before* the faulted one
    is the same message as in this probe.
    """
    cluster = spec.build(plan=FaultPlan(), **options)
    spec.drive(cluster)
    cluster.converge()
    return [
        (step.number, step.detail)
        for step in cluster.injector.trace
        if step.kind == NET_MSG
    ]


def run_cluster_plan(
    spec, plan, converge_rounds=240, step=None, detail="",
    instrument=None, **options,
):
    """Drive the scenario under ``plan``, then recover and judge.

    The driver (console) half is allowed to fail — a crashed coordinator
    or a severed link can starve its RPCs — and the error is recorded,
    not raised: the oracles judge what the *sites* did, and the whole
    point of presumed abort is that the cluster settles without the
    console's help.

    ``instrument`` is called with the freshly built cluster before the
    scenario drives it — the hook ``repro.obs`` (and the replay CLI's
    ``--metrics-out``/``--trace-out``) uses to attach observers.
    """
    cluster = spec.build(plan=plan, **options)
    if instrument is not None:
        instrument(cluster)
    driver_error = ""
    try:
        spec.drive(cluster)
    except AssetError as exc:
        driver_error = f"{type(exc).__name__}: {exc}"
    # The operator repairs the world; the protocol must do the rest.
    cluster.injector.disarm()
    cluster.heal()
    cluster.restart_down_sites()
    converged = cluster.converge(converge_rounds)
    report, analyses = cluster.evaluate(label=plan.describe() or "no-fault")
    return ClusterRunResult(
        plan=plan,
        report=report,
        converged=converged,
        driver_error=driver_error,
        analyses=analyses,
        step=step,
        detail=detail,
        cluster=cluster,
    )


def probe_plan_steps(spec, plan, converge_rounds=240, **options):
    """The message-step universe of a run under ``plan``.

    Second-order sweeps need this: the steps after a coordinator kill
    include the takeover traffic itself (heartbeat lapses, evidence
    polls, the usurper's decision), which a fault-free probe never
    sends.
    """
    cluster = spec.build(plan=plan, **options)
    try:
        spec.drive(cluster)
    except AssetError:
        pass
    cluster.converge(converge_rounds)
    return [
        (step.number, step.detail)
        for step in cluster.injector.trace
        if step.kind == NET_MSG
    ]


def run_failover_plan(
    spec, plan, converge_rounds=240, step=None, detail="",
    instrument=None, restart_first=(), **options,
):
    """Judge a *permanent-death* plan in two phases.

    Phase 1 — the killed site stays dead.  The survivors' lease-paced
    takeover must settle every live member on its own: a coordinator
    that will never answer must not leave a participant PREPARED past
    the lease budget.  Any live site still holding prepared or
    in-doubt state after the convergence budget is a liveness
    violation, recorded on the report.  ``restart_first`` names sites
    restarted *before* this phase (a second crash victim whose logged
    takeover claim must resume) — everything else that is down stays
    down.  Demanding settlement with two members permanently silent
    would be wrong: the silent one may be a commit witness, which is
    exactly the blocking case 2PC cannot decide safely.

    Phase 2 — the operator restarts the dead sites; their durable logs
    rejoin the judgment and the full oracles (cross-site atomicity, no
    dual decision, convergence) run over everything.
    """
    cluster = spec.build(plan=plan, **options)
    if instrument is not None:
        instrument(cluster)
    driver_error = ""
    try:
        spec.drive(cluster)
    except AssetError as exc:
        driver_error = f"{type(exc).__name__}: {exc}"
    cluster.injector.disarm()
    cluster.heal()
    for name in restart_first:
        if name in cluster.sites and not cluster.sites[name].up:
            cluster.restart_site(name)
    survivors_settled = cluster.converge(converge_rounds)
    stranded = sorted(
        name
        for name, site in cluster.sites.items()
        if site.up and (site.prepared or site.in_doubt)
    )
    cluster.restart_down_sites()
    converged = cluster.converge(converge_rounds)
    report, analyses = cluster.evaluate(label=plan.describe() or "no-fault")
    if not survivors_settled:
        report.fail(
            "takeover-liveness",
            "survivors did not quiesce before the dead sites were"
            " restarted",
        )
    if stranded:
        report.fail(
            "takeover-liveness",
            f"sites {stranded} still hold prepared/in-doubt members with"
            f" the coordinator permanently dead",
        )
    return ClusterRunResult(
        plan=plan,
        report=report,
        converged=converged,
        driver_error=driver_error,
        analyses=analyses,
        step=step,
        detail=detail,
        cluster=cluster,
    )


def _swept(spec, steps, limit):
    if steps is None:
        steps = probe_message_steps(spec)
    if limit is not None:
        steps = steps[:limit]
    return steps


def message_fault_sweep(
    spec, faults=("drop",), steps=None, limit=None, **options
):
    """One run per (message step, fault shape); returns the verdicts."""
    field_of = {
        "drop": "drop_msg_at",
        "duplicate": "dup_msg_at",
        "delay": "delay_msg_at",
    }
    results = []
    for number, detail in _swept(spec, steps, limit):
        for fault in faults:
            plan = FaultPlan(**{field_of[fault]: {number}})
            results.append(
                run_cluster_plan(
                    spec, plan, step=number, detail=f"{fault} {detail}", **options
                )
            )
    return results


def site_crash_sweep(spec, victims=None, steps=None, limit=None, **options):
    """Power-cut each victim site at every message step.

    The canonical victim is the coordinator — the only process whose
    loss can strand a prepared participant — but sweeping every site
    also exercises participant-crash recovery (the in-doubt path).
    """
    victims = tuple(victims) if victims is not None else tuple(spec.sites)
    results = []
    for number, detail in _swept(spec, steps, limit):
        for victim in victims:
            plan = FaultPlan(site_crash_at=(victim, number))
            results.append(
                run_cluster_plan(
                    spec,
                    plan,
                    step=number,
                    detail=f"crash {victim} at {detail}",
                    **options,
                )
            )
    return results


def coordinator_death_sweep(spec, steps=None, limit=None, **options):
    """Permanently kill whichever site is coordinating, at every step.

    Uses the plan's ``kill_coordinator_at`` mark: the cluster installs
    the current coordinator's name on the fabric before each group
    commit, so the sweep covers scenarios where the coordinator varies
    (or is chosen mid-run) without naming it.  Marks placed before any
    coordinator exists hold their fire until one is installed — every
    step of the sweep kills some coordinator.  Judged by the two-phase
    failover runner: survivors must settle by takeover *before* the
    dead site is restarted.
    """
    results = []
    for number, detail in _swept(spec, steps, limit):
        plan = FaultPlan(kill_coordinator_at=number)
        results.append(
            run_failover_plan(
                spec,
                plan,
                step=number,
                detail=f"kill coordinator at {detail}",
                **options,
            )
        )
    return results


def takeover_death_sweep(
    spec, wedge_step, victims=None, steps=None, limit=None, **options
):
    """Kill the coordinator at ``wedge_step``, then each other site later.

    The wedge forces a takeover; the second kill sweeps every message
    step *after* the wedge — including the takeover's own traffic — so
    a recovery coordinator dying before or after its force-logged
    claim is covered.  The step universe comes from a probe run under
    the wedge plan (fault-free probes never see takeover messages).
    For phase 1 the second victim restarts while the old coordinator
    stays dead: a force-logged takeover claim must resume across the
    crash, and when the victim *is* the dead coordinator the restart
    exercises the reborn-coordinator self-takeover path instead.
    """
    base = FaultPlan(kill_coordinator_at=wedge_step)
    if steps is None:
        steps = probe_plan_steps(spec, base, **options)
    steps = [(n, d) for n, d in steps if n > wedge_step]
    if limit is not None:
        steps = steps[:limit]
    victims = tuple(victims) if victims is not None else tuple(spec.sites)
    results = []
    for number, detail in steps:
        for victim in victims:
            plan = base.with_(site_crash_at=(victim, number))
            results.append(
                run_failover_plan(
                    spec,
                    plan,
                    step=number,
                    detail=f"wedge@{wedge_step} then crash {victim} at {detail}",
                    restart_first=(victim,),
                    **options,
                )
            )
    return results


def release_blackout_sweep(spec, steps=None, limit=None, **options):
    """Black out every DECISION message, then kill the coordinator.

    The window the plain sweeps never compose: sends are not
    deliveries, so the fabric drops the *entire* commit release —
    fan-out and every heartbeat-paced resend — while the coordinator
    dies permanently at each step from the first (dropped) release
    attempt onward.  Witness-confirmed release is what makes this
    survivable: with no acknowledged witness the commit is never
    force-logged, so the survivors' presumed-abort takeover cannot
    contradict the dead coordinator's durable log.  Judged by the
    two-phase failover runner (takeover liveness + no dual decision).
    """
    blackout = FaultPlan(drop_msg_kinds=frozenset({"decision"}))
    if steps is None:
        steps = probe_plan_steps(spec, blackout, **options)
    # Kills before any release attempt are the plain death sweep's
    # territory; start the marks at the first blacked-out DECISION.
    first = next(
        (n for n, d in steps if d.endswith(":decision")), None
    )
    if first is None:
        return []
    steps = [(n, d) for n, d in steps if n >= first]
    if limit is not None:
        steps = steps[:limit]
    results = []
    for number, detail in steps:
        plan = blackout.with_(kill_coordinator_at=number)
        results.append(
            run_failover_plan(
                spec,
                plan,
                step=number,
                detail=f"decision blackout, kill coordinator at {detail}",
                **options,
            )
        )
    return results


def join_sweep(spec, joiner, steps=None, limit=None, **options):
    """A new site joins the cluster at every message step."""
    results = []
    for number, detail in _swept(spec, steps, limit):
        plan = FaultPlan(join_site_at=(joiner, number))
        results.append(
            run_cluster_plan(
                spec,
                plan,
                step=number,
                detail=f"join {joiner} at {detail}",
                **options,
            )
        )
    return results


def leave_sweep(spec, leaver, successor, steps=None, limit=None, **options):
    """``leaver`` hands its ranges to ``successor`` at every message step.

    The handoff (delegation of in-flight transactions, placement-range
    transfer, epoch bump) lands mid-protocol at every point of the
    scenario; the oracles demand the cluster still converges with
    atomic groups and no dual decisions.
    """
    results = []
    for number, detail in _swept(spec, steps, limit):
        plan = FaultPlan(leave_site_at=(leaver, successor, number))
        results.append(
            run_cluster_plan(
                spec,
                plan,
                step=number,
                detail=f"leave {leaver}->{successor} at {detail}",
                **options,
            )
        )
    return results


def partition_sweep(
    spec, splits=None, steps=None, limit=None, heal_after=16, **options
):
    """Install each canonical split at every message step, heal later.

    ``heal_after`` is in message-step numbers: retries and inquiries
    keep the step counter moving during the partition, so the heal
    always fires — after which the convergence oracle demands every
    member settle.
    """
    splits = tuple(splits) if splits is not None else spec.partition_splits()
    results = []
    for number, detail in _swept(spec, steps, limit):
        for split in splits:
            plan = FaultPlan(
                partition_at=number,
                heal_at=number + heal_after,
                partition_groups=split,
            )
            label = "|".join(",".join(group) for group in split)
            results.append(
                run_cluster_plan(
                    spec,
                    plan,
                    step=number,
                    detail=f"partition {label} at {detail}",
                    **options,
                )
            )
    return results
