"""The simulated message fabric: typed messages over unreliable links.

The fabric is synchronous and pump-driven: :meth:`NetworkFabric.send`
only *enqueues*; :meth:`NetworkFabric.pump_round` delivers everything
queued at that moment (endpoints in sorted-name order, per-endpoint
FIFO) by invoking the destination's registered handler.  Handlers may
send more messages; those land in the *next* round.  No threads, no wall
clock — a run is a deterministic function of (plan, workload), which is
what makes message-step sweeps and replays possible.

Fault semantics, per message, decided at send time:

* **drop** — the message vanishes; the sender cannot tell.
* **duplicate** — delivered twice in the same round (at-least-once
  links; handlers must be idempotent).
* **delay** — delivery slips one pump round, reordering the message
  past everything else sent in the same round.
* **partition** — while a partition is installed, messages between
  different groups are silently dropped (counted separately).
* **site down** — messages from or to a crashed site are dropped, and
  its queued inbox is discarded at crash time (those bytes were in its
  kernel buffers).

The per-message verdicts come from the shared
:class:`~repro.chaos.faults.FaultInjector` (step kind ``NET_MSG``);
partition installation, healing, and site power cuts are plan-driven
too, keyed on the message-step counter passing the planned step number.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count

from repro.chaos.faults import FaultInjector


@dataclass
class Message:
    """One typed message on the fabric.

    ``payload`` is a plain dict (the simulation shares one process, so
    values need not be serializable — callables ride along in tests).
    ``reply_to`` carries the ``msg_id`` of the request a response
    answers, which is how the RPC layer matches replies.
    """

    msg_id: int
    src: str
    dst: str
    kind: str
    payload: dict = field(default_factory=dict)
    reply_to: int = None

    def __repr__(self):
        ref = f", reply_to={self.reply_to}" if self.reply_to is not None else ""
        return f"Message(#{self.msg_id} {self.src}->{self.dst} {self.kind}{ref})"


class NetworkFabric:
    """N named endpoints, unreliable links, deterministic delivery."""

    def __init__(self, injector=None):
        # A default injector with a no-op plan still *numbers* message
        # steps — that is how sweeps learn the message-step universe.
        self.injector = injector if injector is not None else FaultInjector()
        self.handlers = {}
        self.inboxes = {}
        self.delayed = []
        self.down = set()
        self.partitions = ()
        # Installed by the cluster: called with a site name when the
        # plan's site power cut fires.
        self.crash_hook = None
        # Installed by the cluster before each group commit: whom a
        # planned ``kill_coordinator_at`` mark should kill.
        self.coordinator_name = None
        # Planned membership churn cannot execute mid-send (joining a
        # site recurses into the cluster); the marks queue requests
        # here and the cluster drains them at its next tick boundary.
        self._churn_requests = []
        self._partition_applied = False
        self._healed = False
        self._site_crash_fired = False
        self._kill_coordinator_fired = False
        self._join_fired = False
        self._leave_fired = False
        self._msg_ids = count(1)
        self.delivery_log = []  # (step, src, dst, kind, action)
        # Observability hook (repro.obs): a MetricsRegistry installed by
        # ObservabilityKit.attach_fabric, or None.
        self.metrics = None
        self.stats = {
            "sent": 0,
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "partition_drops": 0,
            "rounds": 0,
        }

    # -- membership --------------------------------------------------------

    def register(self, name, handler):
        """Attach an endpoint: ``handler(message)`` receives deliveries."""
        self.handlers[name] = handler
        self.inboxes.setdefault(name, deque())

    def mark_down(self, name):
        """The endpoint lost power: drop its inbox, refuse its traffic."""
        self.down.add(name)
        inbox = self.inboxes.get(name)
        if inbox:
            self.stats["dropped"] += len(inbox)
            inbox.clear()

    def mark_up(self, name):
        """The endpoint restarted (re-register its handler separately)."""
        self.down.discard(name)

    # -- partitions --------------------------------------------------------

    def partition(self, groups):
        """Sever links between the given groups of endpoint names.

        Endpoints named in no group are unaffected (they can reach
        everyone) — that models the test driver's console, which is not
        a network participant.
        """
        self.partitions = tuple(frozenset(group) for group in groups)

    def heal(self):
        """Remove any installed partition."""
        self.partitions = ()

    def severed(self, src, dst):
        """Whether an active partition cuts the ``src -> dst`` link."""
        if not self.partitions:
            return False
        src_group = dst_group = None
        for index, group in enumerate(self.partitions):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    # -- sending -----------------------------------------------------------

    def send(self, src, dst, kind, payload=None, reply_to=None):
        """Enqueue a message; returns it (delivery is not implied).

        The planned partition / heal / site-crash marks are applied
        here, keyed on the message-step counter, *before* the link
        checks — so the message whose step triggers a partition is
        already subject to it.
        """
        message = Message(
            msg_id=next(self._msg_ids),
            src=src,
            dst=dst,
            kind=kind,
            payload=dict(payload) if payload else {},
            reply_to=reply_to,
        )
        self.stats["sent"] += 1
        action, step = self.injector.message(src, dst, kind)
        number = step.number if step is not None else None
        self._apply_planned_marks(number)
        action = self._link_verdict(message, action)
        self.delivery_log.append((number, src, dst, kind, action))
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("fabric.sent", site=src)
            metrics.inc("fabric.msg", kind=kind)
            metrics.inc("fabric.action", action=action or "deliver")
        if action == "drop":
            self.stats["dropped"] += 1
        elif action == "partition_drop":
            self.stats["partition_drops"] += 1
        elif action == "duplicate":
            self.stats["duplicated"] += 1
            self.inboxes[dst].append(message)
            self.inboxes[dst].append(message)
        elif action == "delay":
            self.stats["delayed"] += 1
            self.delayed.append(message)
        else:
            self.inboxes[dst].append(message)
        return message

    def _apply_planned_marks(self, number):
        plan = self.injector.plan
        if number is None:
            return
        if (
            plan.partition_at is not None
            and not self._partition_applied
            and number >= plan.partition_at
        ):
            self.partition(plan.partition_groups)
            self._partition_applied = True
        if (
            plan.heal_at is not None
            and self._partition_applied
            and not self._healed
            and number >= plan.heal_at
        ):
            self.heal()
            self._healed = True
        if (
            plan.site_crash_at is not None
            and not self._site_crash_fired
            and number >= plan.site_crash_at[1]
        ):
            self._site_crash_fired = True
            site = plan.site_crash_at[0]
            if self.crash_hook is not None:
                self.crash_hook(site)
            else:
                self.mark_down(site)
        if (
            plan.kill_coordinator_at is not None
            and not self._kill_coordinator_fired
            and number >= plan.kill_coordinator_at
        ):
            # No coordinator installed yet (the group commit has not
            # begun): hold the fire until one is, so every step of a
            # sweep kills *some* coordinator.
            target = self.coordinator_name
            if target is not None:
                self._kill_coordinator_fired = True
                if self.crash_hook is not None:
                    self.crash_hook(target)
                else:
                    self.mark_down(target)
        if (
            plan.join_site_at is not None
            and not self._join_fired
            and number >= plan.join_site_at[1]
        ):
            self._join_fired = True
            self._churn_requests.append(("join", plan.join_site_at[0]))
        if (
            plan.leave_site_at is not None
            and not self._leave_fired
            and number >= plan.leave_site_at[2]
        ):
            self._leave_fired = True
            self._churn_requests.append(
                ("leave", (plan.leave_site_at[0], plan.leave_site_at[1]))
            )

    def take_churn(self):
        """Drain queued planned-churn requests (cluster tick boundary)."""
        if not self._churn_requests:
            return ()
        requests, self._churn_requests = self._churn_requests, []
        return requests

    def _link_verdict(self, message, action):
        """Downgrade the injector's verdict with link-state realities."""
        if message.src in self.down or message.dst in self.down:
            return "drop"
        if message.dst not in self.inboxes:
            return "drop"
        if self.severed(message.src, message.dst):
            return "partition_drop"
        return action

    # -- delivery ----------------------------------------------------------

    def pending(self):
        """How many messages are queued (inboxes plus delayed)."""
        return sum(len(q) for q in self.inboxes.values()) + len(self.delayed)

    def pump_round(self):
        """Deliver everything queued right now; returns the count.

        Snapshot-then-deliver: messages sent by handlers during this
        round land in the next round, and delayed messages promoted at
        the end of the round also arrive next round — one round late,
        as promised.
        """
        self.stats["rounds"] += 1
        batch = []
        for name in sorted(self.inboxes):
            inbox = self.inboxes[name]
            while inbox:
                batch.append(inbox.popleft())
        delivered = 0
        for message in batch:
            if message.dst in self.down:
                self.stats["dropped"] += 1
                continue
            handler = self.handlers.get(message.dst)
            if handler is None:
                self.stats["dropped"] += 1
                continue
            handler(message)
            delivered += 1
            self.stats["delivered"] += 1
            if self.metrics is not None:
                self.metrics.inc("fabric.delivered", site=message.dst)
        if self.delayed:
            for message in self.delayed:
                if message.dst in self.inboxes:
                    self.inboxes[message.dst].append(message)
            self.delayed.clear()
        return delivered

    def pump(self, max_rounds=64):
        """Pump until quiescent (or the round bound); returns deliveries.

        The bound is a backstop against ping-pong protocols, not a
        correctness knob: a healthy exchange quiesces in a handful of
        rounds.
        """
        total = 0
        for __ in range(max_rounds):
            if not self.pending():
                break
            total += self.pump_round()
        return total
