"""A deterministic simulated message fabric.

:class:`~repro.net.fabric.NetworkFabric` connects named endpoints with
unreliable links: messages can be dropped, duplicated, delayed past a
pump round, severed by partitions, or lost to a site power cut — all
driven by the same numbered-step :class:`~repro.chaos.faults.FaultPlan`
machinery that drives storage faults, so one plan reproduces a whole
multi-site failure scenario deterministically.
"""

from repro.net.fabric import Message, NetworkFabric

__all__ = ["Message", "NetworkFabric"]
