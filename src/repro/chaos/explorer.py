"""Schedule exploration: enumerate, record, replay, and minimize
interleavings of the cooperative runtime.

The cooperative runtime steps every runnable task once per *round*; the
order of steps within the round is the entire interleaving decision
(yield points are exactly the primitive invocations, and blocked requests
retry each round).  A :class:`ScheduleController` plugs into
``CooperativeRuntime(schedule=...)`` and decides that order — while
*recording* every decision as a permutation of the round's runnable-task
indices, so any schedule, however it was produced, replays exactly from
its recorded choice list.

:class:`ScheduleExplorer` drives a deterministic scenario through many
controllers:

* the round-robin baseline (identity permutations);
* a *systematic* phase that enumerates every permutation-tuple of the
  first ``depth`` rounds (bounded — the classic "reorder near the root"
  strategy, where most ordering bugs live);
* a *sampled* phase of seeded-random schedules for the long tail.

On a failing schedule it *minimizes*: truncate the choice list to the
shortest failing prefix, then revert each remaining round to identity
wherever the failure persists — the surviving deviations are the
counterexample's essence, printed as a one-command replay recipe.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field


class ScheduleController:
    """Decides — and records — the task order of every scheduler round.

    ``choices`` replays a previous recording: entry *r* is a tuple of
    indices into round *r*'s runnable list.  Replay is tolerant of
    arity drift (a recorded permutation longer or shorter than the
    round's actual task count is trimmed/extended in order), which lets
    minimization splice identity rounds in without re-deriving the rest.
    Rounds beyond the recorded prefix fall back to ``rng`` shuffling when
    a seed was given, else to identity (round-robin).
    """

    def __init__(self, choices=None, seed=None):
        self.recorded = []
        self._choices = [tuple(c) for c in choices] if choices is not None else None
        self._rng = random.Random(seed) if seed is not None else None
        self._round = 0

    def arrange(self, tids):
        count = len(tids)
        order = None
        if self._choices is not None and self._round < len(self._choices):
            wanted = [i for i in self._choices[self._round] if i < count]
            seen = set(wanted)
            order = wanted + [i for i in range(count) if i not in seen]
        elif self._rng is not None:
            order = list(range(count))
            self._rng.shuffle(order)
        else:
            order = list(range(count))
        self._round += 1
        self.recorded.append(tuple(order))
        return [tids[i] for i in order]


def identity(arity):
    return tuple(range(arity))


def _is_identity(choices):
    return all(perm == identity(len(perm)) for perm in choices)


@dataclass
class ScheduleFailure:
    """One schedule under which the oracle was violated."""

    choices: list  # the (minimized) per-round permutations
    violations: list
    label: str = ""

    def replay_arg(self):
        """The ``--schedule`` value that reproduces this interleaving."""
        return encode_choices(self.choices)

    def describe(self):
        lines = [
            f"schedule failure ({self.label})" if self.label else "schedule failure",
            f"  rounds deviating from round-robin: "
            f"{[i for i, p in enumerate(self.choices) if p != identity(len(p))]}",
            f"  schedule: {self.replay_arg()}",
        ]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def encode_choices(choices):
    """``[(1,0),(0,1,2)]`` -> ``"1,0;0,1,2"`` (the CLI replay format)."""
    return ";".join(",".join(str(i) for i in perm) for perm in choices)


def decode_choices(text):
    """Inverse of :func:`encode_choices`; empty string means no rounds."""
    if not text:
        return []
    return [
        tuple(int(i) for i in part.split(",") if i != "")
        for part in text.split(";")
    ]


@dataclass
class ExplorationResult:
    """What an exploration pass covered and what it found."""

    schedules_run: int = 0
    systematic_run: int = 0
    sampled_run: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures


class ScheduleExplorer:
    """Explores interleavings of one deterministic scenario.

    ``run_one`` is a callable taking a :class:`ScheduleController` and
    returning a list of violation strings (empty when the oracle holds).
    It must build a fresh system each call and be deterministic given the
    controller — which every chaos scenario is.
    """

    def __init__(self, run_one, depth=3, samples=25, seed=0,
                 systematic_budget=200):
        self.run_one = run_one
        self.depth = depth
        self.samples = samples
        self.seed = seed
        self.systematic_budget = systematic_budget

    def explore(self, stop_at_first=False):
        """Run baseline + systematic + sampled phases; minimize failures."""
        result = ExplorationResult()

        baseline = ScheduleController()
        violations = self.run_one(baseline)
        result.schedules_run += 1
        if violations:
            result.failures.append(
                self._minimized(baseline.recorded, violations, "round-robin")
            )
            if stop_at_first:
                return result

        arities = [len(perm) for perm in baseline.recorded]
        for prefix in self._systematic_prefixes(arities):
            controller = ScheduleController(choices=prefix)
            violations = self.run_one(controller)
            result.schedules_run += 1
            result.systematic_run += 1
            if violations:
                result.failures.append(
                    self._minimized(controller.recorded, violations, "systematic")
                )
                if stop_at_first:
                    return result

        for sample in range(self.samples):
            controller = ScheduleController(seed=self.seed + sample)
            violations = self.run_one(controller)
            result.schedules_run += 1
            result.sampled_run += 1
            if violations:
                result.failures.append(
                    self._minimized(
                        controller.recorded, violations, f"sampled seed={self.seed + sample}"
                    )
                )
                if stop_at_first:
                    return result
        return result

    def _systematic_prefixes(self, arities):
        """Every permutation-tuple of the first *branching* rounds.

        Rounds with fewer than two runnable tasks have exactly one order;
        they are pinned to identity so ``depth`` counts only rounds where
        an actual scheduling decision exists — otherwise a scenario with
        a single-task setup preamble would exhaust the depth before the
        contention it was written for.
        """
        spaces = []
        branching = 0
        for arity in arities:
            if branching == self.depth:
                break
            if arity < 2:
                spaces.append([identity(arity)])
            else:
                spaces.append(list(itertools.permutations(range(arity))))
                branching += 1
        emitted = 0
        for combo in itertools.product(*spaces):
            prefix = list(combo)
            if _is_identity(prefix):
                continue  # the baseline already ran it
            yield prefix
            emitted += 1
            if emitted >= self.systematic_budget:
                return

    # -- minimization -------------------------------------------------------

    def _minimized(self, choices, violations, label):
        """Shrink a failing choice list to its essential deviations."""
        choices = [tuple(perm) for perm in choices]

        def still_fails(candidate):
            return bool(self.run_one(ScheduleController(choices=candidate)))

        # 1. shortest failing prefix: rounds past it revert to round-robin.
        low, high = 0, len(choices)
        while low < high:
            mid = (low + high) // 2
            if still_fails(choices[:mid]):
                high = mid
            else:
                low = mid + 1
        trimmed = choices[:high]

        # 2. revert each remaining round to identity where possible.
        for index in range(len(trimmed)):
            ident = identity(len(trimmed[index]))
            if trimmed[index] == ident:
                continue
            candidate = list(trimmed)
            candidate[index] = ident
            if still_fails(candidate):
                trimmed = candidate

        # Re-run the minimized schedule for its own violation list (the
        # shrunk counterexample may fail differently from the original).
        final = self.run_one(ScheduleController(choices=trimmed))
        return ScheduleFailure(
            choices=trimmed,
            violations=final if final else violations,
            label=label,
        )
