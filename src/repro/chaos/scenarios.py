"""Chaos scenarios: deterministic workloads with declared intent.

A scenario is a named, deterministic driver over a
:class:`~repro.chaos.stack.ChaosStack`.  Determinism is load-bearing: the
crash sweep replays the same workload once per numbered I/O step, and a
fault plan is only a reproduction recipe if step *k* always lands on the
same system call.  Scenarios therefore use the cooperative runtime's
round-robin scheduler (or an explicit schedule controller) and never
consult wall clocks or OS randomness.

Each driver records its *intent* on the stack as it goes — dependencies
before forming them, acknowledgements as the system issues them, the
expected clean-run state at the end — which is what lets the oracles
judge a crashed, half-finished, or deliberately mutated run against what
the scenario meant to happen.

The registry maps names to :class:`ScenarioSpec`; the sweep, the
exploration tests, and the ``repro.chaos.replay`` command line all
resolve scenarios through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acta.checker import (
    check_abort_dependencies,
    check_commit_order,
    check_group_atomicity,
)
from repro.chaos.stack import ChaosStack
from repro.core.dependency import DependencyType
from repro.storage.log import FlushCoalescer


@dataclass(frozen=True)
class ScenarioSpec:
    """A named deterministic workload plus its stack configuration."""

    name: str
    description: str
    drive: object  # callable(stack)
    group_commit: object = None  # callable() -> FlushCoalescer, or None
    # None, or a dict of repro.resilience.install_resilience overrides —
    # the stack then carries a wired DeadlineTable/Watchdog/FlushHealth
    # kit on ``stack.resilience``.
    resilience: object = None

    def build_stack(self, plan=None, seed=None, schedule=None):
        coalescer = self.group_commit() if self.group_commit else None
        return ChaosStack(
            plan=plan,
            group_commit=coalescer,
            seed=seed,
            schedule=schedule,
            resilience=self.resilience,
        )


SCENARIOS = {}


def register(name, description, group_commit=None, resilience=None):
    """Decorator: register ``drive`` under ``name``."""

    def wrap(drive):
        SCENARIOS[name] = ScenarioSpec(
            name=name,
            description=description,
            drive=drive,
            group_commit=group_commit,
            resilience=resilience,
        )
        return drive

    return wrap


def get(name):
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


def names():
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# program bodies
# ---------------------------------------------------------------------------


def _writer(tx, oid, value):
    yield tx.write(oid, value)


def _double_writer(tx, oid1, value1, oid2, value2):
    yield tx.write(oid1, value1)
    yield tx.write(oid2, value2)


def _read_then_write(tx, read_oid, write_oid, value):
    yield tx.read(read_oid)
    yield tx.write(write_oid, value)


# ---------------------------------------------------------------------------
# EX10: the section 4.2 commit/abort machinery, end to end
# ---------------------------------------------------------------------------


@register(
    "ex10_commit_abort",
    "GC group commit, AD cascade, delegation survival, explicit abort,"
    " CD-ordered commits, and a mid-run page flush (EX10 scenario)",
)
def ex10_commit_abort(stack):
    rt, manager = stack.runtime, stack.manager
    names_ = ["a", "b", "c", "d", "e", "f", "g", "h"]
    oids = {}

    def setup(tx):
        for name in names_:
            oids[name] = yield tx.create(name.encode() + b"0")

    result = rt.run(setup)
    stack.note_ack(result.tid)
    stack.intent.oids = dict(oids)
    a, b, c, d, e, f, g, h = (oids[n] for n in names_)

    # A GC pair: t1 and t2 commit (or abort) as one unit.
    t1 = rt.spawn(_writer, (a, b"a1"))
    t2 = rt.spawn(_writer, (b, b"b1"))
    stack.intend_dependency(DependencyType.GC, t1, t2)
    manager.form_dependency(DependencyType.GC, t1, t2)

    # Delegation: t3 writes c and f, hands c to t2, then aborts — the
    # delegated update must survive t3's abort and commit with t2.
    t3 = rt.spawn(_double_writer, (c, b"c1", f, b"f1"))
    rt.wait(t3)
    stack.intend_delegation(t3, t2, (c,))
    manager.delegate(t3, t2, oids={c})
    manager.abort(t3)  # undoes f only; c now rides with t2

    # An AD chain: aborting t4 must take t5 down with it.
    t4 = rt.spawn(_writer, (d, b"d1"))
    t5 = rt.spawn(_writer, (e, b"e1"))
    rt.wait(t4)
    rt.wait(t5)
    stack.intend_dependency(DependencyType.AD, t4, t5)
    manager.form_dependency(DependencyType.AD, t4, t5)

    # A mid-run page write-back, as any real system performs under memory
    # pressure: dirty pages carrying *uncommitted* updates head to disk,
    # which is exactly the window the WAL rule exists for.
    stack.storage.pool.flush_all()

    manager.abort(t4)  # cascades to t5 over the AD edge

    stack.commit(t1, t2)  # the GC group commits as one unit

    # A CD pair committed in the required order.
    t6 = rt.spawn(_writer, (g, b"g1"))
    t7 = rt.spawn(_writer, (h, b"h1"))
    stack.intend_dependency(DependencyType.CD, t6, t7)
    manager.form_dependency(DependencyType.CD, t6, t7)
    stack.commit(t6)
    stack.commit(t7)

    stack.intent.expected_clean = {
        a.value: b"a1",
        b.value: b"b1",
        c.value: b"c1",  # delegated to (committed) t2 before t3's abort
        d.value: b"d0",  # undone by t4's abort
        e.value: b"e0",  # undone by the AD cascade
        f.value: b"f0",  # undone by t3's abort
        g.value: b"g1",
        h.value: b"h1",
    }


# ---------------------------------------------------------------------------
# Group commit: the enrollment/deferral window
# ---------------------------------------------------------------------------

GC_BURST_COMMITS = 6


def _group_commit_drive(stack):
    rt = stack.runtime
    oids = []

    def setup(tx):
        for __ in range(GC_BURST_COMMITS):
            oids.append((yield tx.create(b"w0")))

    result = rt.run(setup)
    stack.storage.sync_log()  # drain the batch: setup is durable
    stack.note_ack(result.tid)
    stack.intent.oids = {f"w{i}": oid for i, oid in enumerate(oids)}

    for index, oid in enumerate(oids):
        value = b"w%d" % (index + 1)
        tid = rt.spawn(_writer, (oid, value))
        stack.commit(tid)

    stack.storage.sync_log()  # end-of-burst drain
    stack.intent.expected_clean = {
        oid.value: b"w%d" % (index + 1) for index, oid in enumerate(oids)
    }


def make_group_commit_scenario(batch):
    """Register (or fetch) the burst scenario for one batch size."""
    name = f"group_commit_batch{batch}"
    if name not in SCENARIOS:
        SCENARIOS[name] = ScenarioSpec(
            name=name,
            description=(
                f"{GC_BURST_COMMITS} sequential commits through a"
                f" FlushCoalescer(max_commits={batch}): every crash point in"
                f" the enrollment window loses the whole pending batch"
            ),
            drive=_group_commit_drive,
            group_commit=lambda: FlushCoalescer(max_commits=batch),
        )
    return SCENARIOS[name]


# Default registration for the replay CLI.
for _batch in (1, 2, 3, 4):
    make_group_commit_scenario(_batch)


# ---------------------------------------------------------------------------
# The checkpoint window: where the WAL rule earns its keep
# ---------------------------------------------------------------------------


@register(
    "checkpoint_window",
    "a sharp (truncating) checkpoint followed by fresh updates and a"
    " mid-run page write-back: once the log is truncated, redo can no"
    " longer heal a page flushed ahead of its log records, so every"
    " crash in this window tests the write-ahead rule itself",
)
def checkpoint_window(stack):
    rt, manager = stack.runtime, stack.manager
    oids = {}

    def setup(tx):
        oids["a"] = yield tx.create(b"a0")
        oids["b"] = yield tx.create(b"b0")

    result = rt.run(setup)
    stack.note_ack(result.tid)
    stack.intent.oids = dict(oids)
    a, b = oids["a"], oids["b"]

    # Quiescent: flush all pages and truncate the log.  From here on the
    # durable log no longer holds the objects' creation history — the
    # oracle's replay starts from this declared baseline, and the acks so
    # far are absorbed into it (their commit records leave the log).
    # Intent precedes the operation so a crash *inside* the checkpoint is
    # still judged correctly.
    stack.intent.baseline = {a.value: b"a0", b.value: b"b0"}
    stack.note_truncation()
    stack.storage.checkpoint(truncate=True)

    t1 = rt.spawn(_writer, (a, b"a1"))
    t2 = rt.spawn(_writer, (b, b"b1"))
    rt.wait(t1)
    rt.wait(t2)

    # The dangerous moment: dirty pages carrying *uncommitted* post-
    # checkpoint updates head to disk.  With the WAL rule intact, the
    # log is forced first and any crash can undo them; without it, the
    # truncated log cannot explain what the crash leaves behind.
    stack.storage.pool.flush_all()

    stack.commit(t1)
    manager.abort(t2)

    stack.intent.expected_clean = {a.value: b"a1", b.value: b"b0"}


# ---------------------------------------------------------------------------
# Schedule exploration: contention, deadlock victims, and cascades
# ---------------------------------------------------------------------------


@register(
    "deadlock_cascade",
    "two transactions deadlock over x/y (GC-linked, with an AD dependent)"
    " while two more race on a third object; every interleaving must keep"
    " group atomicity and abort propagation",
)
def deadlock_cascade(stack):
    rt, manager = stack.runtime, stack.manager
    oids = {}

    def setup(tx):
        for name in ("x", "y", "z", "p"):
            oids[name] = yield tx.create(name.encode() + b"0")

    result = rt.run(setup)
    stack.note_ack(result.tid)
    stack.intent.oids = dict(oids)
    x, y, z, p = (oids[n] for n in ("x", "y", "z", "p"))

    # The classic crossed pair: t1 reads x then writes y; t2 reads y then
    # writes x.  Whatever the round order, they deadlock; the detector
    # picks a victim, and the GC edge must drag the survivor down too.
    t1 = rt.spawn(_read_then_write, (x, y, b"y1"))
    t2 = rt.spawn(_read_then_write, (y, x, b"x2"))
    stack.intend_dependency(DependencyType.GC, t1, t2)
    manager.form_dependency(DependencyType.GC, t1, t2)

    # t3 hangs off t1 by an AD edge: t1's abort must propagate.
    t3 = rt.spawn(_writer, (p, b"p3"))
    stack.intend_dependency(DependencyType.AD, t1, t3)
    manager.form_dependency(DependencyType.AD, t1, t3)

    # t4 and t5 race write-write on z; the round order decides who wins
    # the lock first, but both must eventually commit.
    t4 = rt.spawn(_writer, (z, b"z4"))
    t5 = rt.spawn(_writer, (z, b"z5"))

    outcomes = rt.commit_all([t1, t2, t3, t4, t5])
    for tid, committed in outcomes.items():
        if committed:
            stack.note_ack(tid)
    return outcomes


# ---------------------------------------------------------------------------
# Resilience: leases, degradation, and retry under transient faults
# ---------------------------------------------------------------------------


@register(
    "lease_expiry_mid_delegation",
    "a delegator under a heartbeat lease hands an update to a delegatee"
    " and then crashes silently (stops heartbeating); the watchdog must"
    " reap the delegator at lease expiry and orphan-abort the delegatee"
    " in the same scan, while an unrelated healthy transaction commits",
    resilience={"scan_interval": 4},
)
def lease_expiry_mid_delegation(stack):
    rt, manager = stack.runtime, stack.manager
    res = stack.resilience
    oids = {}

    def setup(tx):
        for name in ("a", "b", "c"):
            oids[name] = yield tx.create(name.encode() + b"0")

    setup_tid = rt.spawn(setup)
    rt.wait(setup_tid)
    stack.commit(setup_tid)
    stack.intent.oids = dict(oids)
    a, b, c = oids["a"], oids["b"], oids["c"]

    # t1, the delegator, works under a heartbeat lease...
    t1 = rt.spawn(_writer, (a, b"a1"))
    res.deadlines.grant_lease(t1, duration=64)
    rt.wait(t1)
    # ...and hands its update to a delegatee t2.
    t2 = rt.spawn(_writer, (b, b"b1"))
    rt.wait(t2)
    stack.intend_delegation(t1, t2, (a,))
    manager.delegate(t1, t2, oids={a})

    # t1 now dies silently: no heartbeat, no commit, no abort.  The
    # watchdog's deterministic time travel jumps the logical clock to
    # the lease expiry, reaps t1, and — because the DELEGATE event made
    # t1 the guardian of t2 — orphan-aborts the delegatee in the same
    # scan (t2 holds no lease of its own).
    res.watchdog.on_stall()

    # An unrelated, healthy transaction is untouched and commits.
    t3 = rt.spawn(_writer, (c, b"c1"))
    stack.commit(t3)

    stack.intent.expected_clean = {
        a.value: b"a0",  # delegated to t2, undone by the orphan abort
        b.value: b"b0",  # undone by the orphan abort
        c.value: b"c1",
    }


COALESCER_DEGRADE_COMMITS = 8


@register(
    "coalescer_degrade",
    f"{COALESCER_DEGRADE_COMMITS} sequential commits through a"
    " FlushCoalescer(max_commits=2) wearing a FlushHealth breaker"
    " (degrade_after=2, repromote_after=2): planned lying fsyncs are"
    " detected by the durable-count audit, trip the breaker into"
    " synchronous per-commit flushing, and a healthy window re-promotes",
    group_commit=lambda: FlushCoalescer(max_commits=2),
    resilience={"degrade_after": 2, "repromote_after": 2},
)
def coalescer_degrade(stack):
    rt = stack.runtime
    oids = []

    def setup(tx):
        for __ in range(COALESCER_DEGRADE_COMMITS):
            oids.append((yield tx.create(b"v0")))

    setup_tid = rt.spawn(setup)
    rt.wait(setup_tid)
    stack.commit(setup_tid)
    stack.storage.sync_log()  # drain the batch: setup is durable
    stack.intent.oids = {f"v{i}": oid for i, oid in enumerate(oids)}

    for index, oid in enumerate(oids):
        value = b"v%d" % (index + 1)
        tid = rt.spawn(_writer, (oid, value))
        stack.commit(tid)

    stack.storage.sync_log()  # end-of-burst drain
    stack.intent.expected_clean = {
        oid.value: b"v%d" % (index + 1) for index, oid in enumerate(oids)
    }


@register(
    "retry_saga",
    "a two-component saga (with a compensation) whose every commit runs"
    " under the stack's retry policy: a transient log-flush fault is"
    " absorbed by one retry, while a zero-budget policy surfaces"
    " RetryExhausted — the retry-until-budget-exhausted workload",
)
def retry_saga(stack):
    from repro.models.saga import Saga, run_saga

    rt = stack.runtime
    oids = {}

    def setup(tx):
        oids["a"] = yield tx.create(b"a0")
        oids["b"] = yield tx.create(b"b0")

    setup_tid = rt.spawn(setup)
    rt.wait(setup_tid)
    stack.commit(setup_tid)
    stack.intent.oids = dict(oids)
    a, b = oids["a"], oids["b"]

    saga = Saga(retry=stack.retry_policy)
    saga.step(
        _writer, args=(a, b"a1"),
        compensation=_writer, compensation_args=(a, b"a0"),
        name="ta",
    )
    saga.step(_writer, args=(b, b"b1"), name="tb")
    outcome = run_saga(rt, saga)

    # Acks for every commit the saga drove (components, then any
    # compensations).  Noted after the fact — sound, because transient
    # faults never crash the process mid-saga.
    for tid in outcome.step_tids[: outcome.completed_steps]:
        stack.note_ack(tid)
    for ct in outcome.compensation_tids:
        stack.note_ack(ct)

    if outcome.committed:
        stack.intent.expected_clean = {a.value: b"a1", b.value: b"b1"}
    else:
        stack.intent.expected_clean = {a.value: b"a0", b.value: b"b0"}


def live_violations(stack):
    """The live (no-crash) oracle: ACTA properties over the recorded
    history with the scenario's *intended* dependency edges.

    Used by the schedule explorer after driving a scenario to completion
    — a mutated primitive that silently dropped an edge shows up here,
    because the intent list still carries it.
    """
    violations = []
    recorder = stack.recorder
    deps = stack.intent.dependencies
    for ti, fate_i, tj, fate_j in check_group_atomicity(recorder, deps):
        violations.append(
            f"group-atomicity: GC pair split — {ti!r} is {fate_i},"
            f" {tj!r} is {fate_j}"
        )
    for ti, tj in check_abort_dependencies(recorder, deps):
        violations.append(
            f"abort-dependency: AD({ti!r} -> {tj!r}) — {ti!r} aborted"
            f" but {tj!r} committed"
        )
    for ti, tj in check_commit_order(recorder, deps):
        violations.append(
            f"commit-order: CD({ti!r} -> {tj!r}) — {tj!r} committed first"
        )
    return violations
