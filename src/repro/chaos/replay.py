"""Replay chaos counterexamples from the command line.

Every failure artifact the sweeps or the schedule explorer produce
embeds a one-command recipe::

    PYTHONPATH=src python -m repro.chaos.replay ex10_commit_abort \\
        --plan '{"crash_at": 42}'

    PYTHONPATH=src python -m repro.chaos.replay cluster_group_commit \\
        --drop-at 34 --site-crash alpha 38

which re-runs the named scenario under exactly that fault plan (and/or
recorded schedule), prints the trace and the oracle verdict, and exits
non-zero when the violation reproduces.  Single-site scenarios resolve
through the chaos registry and run on a
:class:`~repro.chaos.stack.ChaosStack`; cluster scenarios resolve
through :data:`repro.cluster.scenarios.CLUSTER_SCENARIOS` and run on a
full :class:`~repro.cluster.cluster.Cluster` with the recover-and-
converge harness of :mod:`repro.cluster.sweep`; workflow scenarios
resolve through :data:`repro.chaos.workflow.WORKFLOW_SCENARIOS` and run
the crash → restart → ``recover()`` → resume-to-terminal protocol of
:mod:`repro.chaos.workflow` (``--storage sharded`` swaps in the
segmented WAL, ``--signal-at approve:qa`` overrides the signal script).

Flags compose with ``--plan``: explicit flags override the JSON fields,
so ``--crash-at 41`` on an existing artifact probes the neighbouring
step without editing JSON.  The last line of output is always a
machine-readable JSON verdict (``{"scenario", "plan", "ok",
"violations", ...}``) so CI and scripts can consume the result without
scraping prose.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import scenarios
from repro.chaos import workflow as workflow_scenarios
from repro.chaos.explorer import ScheduleController, decode_choices
from repro.chaos.faults import FaultPlan
from repro.chaos.scenarios import live_violations
from repro.chaos.sweep import run_plan
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import run_cluster_plan
from repro.obs import ObservabilityKit


def _make_kit(args):
    """An ObservabilityKit when ``--metrics-out``/``--trace-out`` ask for
    one, else ``None`` (the run stays entirely unobserved)."""
    if args.metrics_out is None and args.trace_out is None:
        return None
    return ObservabilityKit()


def _write_obs(kit, args):
    """Write the requested observability outputs (before the verdict)."""
    if kit is None:
        return
    if args.metrics_out is not None:
        kit.write_metrics(args.metrics_out)
        print(f"metrics: {args.metrics_out}")
    if args.trace_out is not None:
        count = kit.write_spans(args.trace_out)
        print(f"spans: {args.trace_out} ({count} spans)")


def _parse_join(text):
    """``"delta@38"`` -> ``("delta", 38)``."""
    name, sep, step = text.rpartition("@")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME@STEP, got {text!r}"
        )
    return (name, int(step))


def _parse_leave(text):
    """``"beta:gamma@38"`` -> ``("beta", "gamma", 38)``."""
    pair, sep, step = text.rpartition("@")
    leaver, sep2, successor = pair.partition(":")
    if not sep or not sep2 or not leaver or not successor:
        raise argparse.ArgumentTypeError(
            f"expected LEAVER:SUCCESSOR@STEP, got {text!r}"
        )
    return (leaver, successor, int(step))


def _parse_partition(text):
    """``"alpha|beta,gamma"`` -> ``(("alpha",), ("beta", "gamma"))``."""
    groups = tuple(
        tuple(name for name in part.split(",") if name)
        for part in text.split("|")
    )
    groups = tuple(group for group in groups if group)
    if len(groups) < 2:
        raise argparse.ArgumentTypeError(
            f"a partition needs at least two groups: {text!r}"
        )
    return groups


def build_plan(args):
    base = FaultPlan.from_dict(json.loads(args.plan)) if args.plan else FaultPlan()
    overrides = {}
    if args.crash_at is not None:
        overrides["crash_at"] = args.crash_at
    if args.torn_page_at is not None:
        overrides["torn_page_at"] = args.torn_page_at
    if args.lose_fsync:
        overrides["lose_fsync_at"] = frozenset(args.lose_fsync)
    if args.fail_flush_at:
        overrides["fail_flush_at"] = frozenset(args.fail_flush_at)
    if args.failpoint is not None:
        name, nth = args.failpoint
        overrides["crash_at_failpoint"] = (name, int(nth))
    if args.keep_tail:
        overrides["keep_tail"] = True
    # Network faults (cluster scenarios).
    if args.drop_at:
        overrides["drop_msg_at"] = frozenset(args.drop_at)
    if args.drop_kind:
        overrides["drop_msg_kinds"] = frozenset(args.drop_kind)
    if args.dup_at:
        overrides["dup_msg_at"] = frozenset(args.dup_at)
    if args.delay_at:
        overrides["delay_msg_at"] = frozenset(args.delay_at)
    if args.partition is not None:
        overrides["partition_groups"] = args.partition
        overrides["partition_at"] = (
            args.partition_at if args.partition_at is not None else 1
        )
        if args.heal_at is not None:
            overrides["heal_at"] = args.heal_at
    if args.site_crash is not None:
        site, step = args.site_crash
        overrides["site_crash_at"] = (site, int(step))
    if args.kill_coordinator_at is not None:
        overrides["kill_coordinator_at"] = args.kill_coordinator_at
    if args.join_site is not None:
        overrides["join_site_at"] = args.join_site
    if args.leave_site is not None:
        overrides["leave_site_at"] = args.leave_site
    return base.with_(**overrides) if overrides else base


def _verdict_line(scenario, plan, ok, violations, **extra):
    """The machine-readable last line: one JSON object, stable keys."""
    payload = {
        "scenario": scenario,
        "plan": plan.to_dict(),
        "ok": bool(ok),
        "violations": list(violations),
    }
    payload.update(extra)
    print(json.dumps(payload, sort_keys=True))


def _parse_signal(text):
    """``"approve:qa"`` -> ``("approve", "qa")``; bare name -> payload None."""
    name, sep, payload = text.partition(":")
    if not name:
        raise argparse.ArgumentTypeError(f"empty signal name in {text!r}")
    return (name, payload if sep else None)


def _run_workflow(spec, plan, args):
    """Replay one workflow scenario: crash, restart, recover, resume."""
    import dataclasses

    if args.signal_at:
        spec = dataclasses.replace(spec, signals=tuple(args.signal_at))
    kit = _make_kit(args)
    captured = {}

    def capture(stack):
        captured["stack"] = stack
        if kit is not None:
            kit.attach_stack(stack)

    attach_engine = kit.attach_workflow if kit is not None else None
    if args.storage == "sharded":
        outcome = workflow_scenarios.run_sharded_workflow_plan(
            spec, plan, n_shards=args.shards,
            instrument_resume=attach_engine,
        )
    else:
        outcome = workflow_scenarios.run_workflow_plan(
            spec, plan, instrument=capture,
            instrument_resume=attach_engine,
        )
    if args.trace and "stack" in captured:
        for step in captured["stack"].injector.trace:
            print(f"  {step.number:4d} {step.kind} {step.detail}")
    print(f"plan: {plan.describe() or 'no-fault'}")
    if outcome.crash is not None:
        print(f"crashed: step {outcome.crash.step} ({outcome.crash.kind})")
    else:
        print("run completed; power cut applied at end")
    if outcome.oracle is not None:
        print(outcome.oracle.describe())
    print(f"resumed: {outcome.resumed}")
    print(f"terminal: {outcome.status.value if outcome.status else None}")
    _write_obs(kit, args)
    violations = list(outcome.violations)
    if outcome.oracle is not None:
        violations.extend(outcome.oracle.violations)
    _verdict_line(
        spec.name,
        plan,
        outcome.ok,
        violations,
        storage=args.storage,
        resumed=outcome.resumed,
        status=outcome.status.value if outcome.status else None,
    )
    return 0 if outcome.ok else 1


def _run_cluster(spec, plan, args):
    kit = _make_kit(args)
    instrument = kit.attach_cluster if kit is not None else None
    result = run_cluster_plan(spec, plan, instrument=instrument)
    if args.trace:
        for number, src, dst, kind, action in result.cluster.fabric.delivery_log:
            step = f"{number:4d}" if number is not None else "   -"
            print(f"  {step} {src}->{dst} {kind} [{action}]")
    print(f"plan: {plan.describe() or 'no-fault'}")
    if result.driver_error:
        print(f"console lost contact: {result.driver_error}")
    print(f"converged: {result.converged}")
    print(result.report.describe())
    violations = list(result.report.violations)
    if not result.converged:
        violations.append("convergence: cluster did not quiesce")
    _write_obs(kit, args)
    _verdict_line(
        spec.name,
        plan,
        result.ok,
        violations,
        converged=result.converged,
        driver_error=result.driver_error,
    )
    return 0 if result.ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.replay",
        description="Replay a chaos counterexample (fault plan and/or schedule).",
    )
    parser.add_argument("scenario", nargs="?", help="registered scenario name")
    parser.add_argument("--list", action="store_true", help="list scenarios")
    parser.add_argument("--plan", help="JSON fault plan (artifact format)")
    parser.add_argument("--crash-at", type=int, help="crash before I/O step N")
    parser.add_argument("--torn-page-at", type=int, help="tear page write N")
    parser.add_argument(
        "--lose-fsync", type=int, action="append", default=[],
        help="lie about flush step N (repeatable)",
    )
    parser.add_argument(
        "--fail-flush-at", type=int, action="append", default=[],
        help="transient-fail flush step N once (repeatable)",
    )
    parser.add_argument(
        "--retry", type=int, metavar="ATTEMPTS",
        help="attach a RetryPolicy with this total-attempt budget",
    )
    parser.add_argument(
        "--failpoint", nargs=2, metavar=("NAME", "NTH"),
        help="crash at the NTH occurrence of semantic failpoint NAME",
    )
    parser.add_argument("--keep-tail", action="store_true",
                        help="the OS wrote back the volatile log tail")
    parser.add_argument(
        "--drop-at", type=int, action="append", default=[],
        help="drop the message at step N (repeatable; cluster scenarios)",
    )
    parser.add_argument(
        "--drop-kind", action="append", default=[], metavar="KIND",
        help="drop every message of KIND, e.g. 'decision' (repeatable;"
             " resends included — a full release blackout)",
    )
    parser.add_argument(
        "--dup-at", type=int, action="append", default=[],
        help="duplicate the message at step N (repeatable)",
    )
    parser.add_argument(
        "--delay-at", type=int, action="append", default=[],
        help="delay the message at step N one round (repeatable)",
    )
    parser.add_argument(
        "--partition", type=_parse_partition, metavar="A|B,C",
        help="sever site groups, '|'-separated, names ','-separated",
    )
    parser.add_argument(
        "--partition-at", type=int,
        help="install the partition at message step N (default 1)",
    )
    parser.add_argument(
        "--heal-at", type=int, help="heal the partition at message step N"
    )
    parser.add_argument(
        "--site-crash", nargs=2, metavar=("SITE", "STEP"),
        help="power-cut SITE when message step STEP is reached",
    )
    parser.add_argument(
        "--kill-coordinator-at", type=int, metavar="STEP",
        help="power-cut whichever site is coordinating a group commit"
             " at message step STEP (held until a coordinator exists)",
    )
    parser.add_argument(
        "--join-site", type=_parse_join, metavar="NAME@STEP",
        help="a new site NAME joins the cluster at message step STEP",
    )
    parser.add_argument(
        "--leave-site", type=_parse_leave, metavar="LEAVER:SUCCESSOR@STEP",
        help="LEAVER hands its ranges and live transactions to SUCCESSOR"
             " at message step STEP",
    )
    parser.add_argument(
        "--signal-at", type=_parse_signal, action="append", default=[],
        metavar="NAME[:PAYLOAD]",
        help="override a workflow scenario's scripted signal deliveries"
             " (repeatable, delivered when the execution parks on NAME)",
    )
    parser.add_argument(
        "--storage", choices=("flat", "sharded"), default="flat",
        help="WAL engine for workflow scenarios (default flat)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --storage sharded (default 4)",
    )
    parser.add_argument(
        "--schedule",
        help="per-round task-index permutations, e.g. '1,0;0,2,1'",
    )
    parser.add_argument("--trace", action="store_true",
                        help="print the numbered I/O step trace")
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the run's metrics snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run's transaction spans to PATH as JSONL",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in scenarios.names():
            print(f"{name}: {scenarios.get(name).description}")
        for name in cluster_scenarios.names():
            print(f"{name} [cluster]: {cluster_scenarios.get(name).description}")
        for name in workflow_scenarios.names():
            print(
                f"{name} [workflow]:"
                f" {workflow_scenarios.get(name).description}"
            )
        return 0
    if not args.scenario:
        parser.error("a scenario name is required (or --list)")

    plan = build_plan(args)

    if args.scenario in cluster_scenarios.CLUSTER_SCENARIOS:
        return _run_cluster(cluster_scenarios.get(args.scenario), plan, args)

    if args.scenario in workflow_scenarios.WORKFLOW_SCENARIOS:
        return _run_workflow(workflow_scenarios.get(args.scenario), plan, args)

    spec = scenarios.get(args.scenario)
    controller = (
        ScheduleController(choices=decode_choices(args.schedule))
        if args.schedule is not None
        else None
    )

    kit = _make_kit(args)

    if plan.is_noop and controller is not None:
        # Pure schedule replay: drive live, judge with the live oracle.
        stack = spec.build_stack(schedule=controller)
        if kit is not None:
            kit.attach_stack(stack)
        spec.drive(stack)
        violations = live_violations(stack)
        if args.trace:
            for step in stack.injector.trace:
                print(f"  {step.number:4d} {step.kind} {step.detail}")
        print(f"schedule: {args.schedule}")
        if violations:
            print("oracle VIOLATED:")
            for violation in violations:
                print(f"  - {violation}")
        else:
            print("oracle OK")
        _write_obs(kit, args)
        _verdict_line(
            spec.name, plan, not violations, violations, schedule=args.schedule
        )
        return 1 if violations else 0

    policy_factory = None
    if args.retry is not None:
        from repro.resilience import RetryPolicy

        def policy_factory(stack, attempts=args.retry):
            return RetryPolicy(
                max_attempts=attempts, clock=stack.manager.clock
            )

    outcome = run_plan(
        spec, plan, schedule=controller, policy_factory=policy_factory,
        instrument=kit.attach_stack if kit is not None else None,
    )
    if args.trace:
        for step in outcome.stack.injector.trace:
            print(f"  {step.number:4d} {step.kind} {step.detail}")
    print(f"plan: {plan.describe()}")
    if outcome.crash is not None:
        print(f"crashed: step {outcome.crash.step} ({outcome.crash.kind})")
    elif outcome.model_error is not None:
        print(f"transient fault surfaced: {outcome.model_error!r}")
    else:
        print("run completed; power cut applied at end")
    print(f"recovery: {outcome.system.report!r}")
    print(outcome.oracle.describe())
    _write_obs(kit, args)
    _verdict_line(spec.name, plan, outcome.ok, outcome.oracle.violations)
    return 0 if outcome.ok else 1


if __name__ == "__main__":
    sys.exit(main())
