"""Replay chaos counterexamples from the command line.

Every failure artifact the sweep or the schedule explorer produces
embeds a one-command recipe::

    PYTHONPATH=src python -m repro.chaos.replay ex10_commit_abort \\
        --plan '{"crash_at": 42}'

which re-runs the named scenario under exactly that fault plan (and/or
recorded schedule), prints the I/O trace, the recovery report, and the
oracle verdict, and exits non-zero when the violation reproduces.

Flags compose with ``--plan``: explicit flags override the JSON fields,
so ``--crash-at 41`` on an existing artifact probes the neighbouring
step without editing JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import scenarios
from repro.chaos.explorer import ScheduleController, decode_choices
from repro.chaos.faults import FaultPlan
from repro.chaos.scenarios import live_violations
from repro.chaos.sweep import run_plan


def build_plan(args):
    base = FaultPlan.from_dict(json.loads(args.plan)) if args.plan else FaultPlan()
    overrides = {}
    if args.crash_at is not None:
        overrides["crash_at"] = args.crash_at
    if args.torn_page_at is not None:
        overrides["torn_page_at"] = args.torn_page_at
    if args.lose_fsync:
        overrides["lose_fsync_at"] = frozenset(args.lose_fsync)
    if args.fail_flush_at:
        overrides["fail_flush_at"] = frozenset(args.fail_flush_at)
    if args.failpoint is not None:
        name, nth = args.failpoint
        overrides["crash_at_failpoint"] = (name, int(nth))
    if args.keep_tail:
        overrides["keep_tail"] = True
    return base.with_(**overrides) if overrides else base


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.replay",
        description="Replay a chaos counterexample (fault plan and/or schedule).",
    )
    parser.add_argument("scenario", nargs="?", help="registered scenario name")
    parser.add_argument("--list", action="store_true", help="list scenarios")
    parser.add_argument("--plan", help="JSON fault plan (artifact format)")
    parser.add_argument("--crash-at", type=int, help="crash before I/O step N")
    parser.add_argument("--torn-page-at", type=int, help="tear page write N")
    parser.add_argument(
        "--lose-fsync", type=int, action="append", default=[],
        help="lie about flush step N (repeatable)",
    )
    parser.add_argument(
        "--fail-flush-at", type=int, action="append", default=[],
        help="transient-fail flush step N once (repeatable)",
    )
    parser.add_argument(
        "--retry", type=int, metavar="ATTEMPTS",
        help="attach a RetryPolicy with this total-attempt budget",
    )
    parser.add_argument(
        "--failpoint", nargs=2, metavar=("NAME", "NTH"),
        help="crash at the NTH occurrence of semantic failpoint NAME",
    )
    parser.add_argument("--keep-tail", action="store_true",
                        help="the OS wrote back the volatile log tail")
    parser.add_argument(
        "--schedule",
        help="per-round task-index permutations, e.g. '1,0;0,2,1'",
    )
    parser.add_argument("--trace", action="store_true",
                        help="print the numbered I/O step trace")
    args = parser.parse_args(argv)

    if args.list:
        for name in scenarios.names():
            print(f"{name}: {scenarios.get(name).description}")
        return 0
    if not args.scenario:
        parser.error("a scenario name is required (or --list)")

    spec = scenarios.get(args.scenario)
    plan = build_plan(args)
    controller = (
        ScheduleController(choices=decode_choices(args.schedule))
        if args.schedule is not None
        else None
    )

    if plan.is_noop and controller is not None:
        # Pure schedule replay: drive live, judge with the live oracle.
        stack = spec.build_stack(schedule=controller)
        spec.drive(stack)
        violations = live_violations(stack)
        if args.trace:
            for step in stack.injector.trace:
                print(f"  {step.number:4d} {step.kind} {step.detail}")
        print(f"schedule: {args.schedule}")
        if violations:
            print("oracle VIOLATED:")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print("oracle OK")
        return 0

    policy_factory = None
    if args.retry is not None:
        from repro.resilience import RetryPolicy

        def policy_factory(stack, attempts=args.retry):
            return RetryPolicy(
                max_attempts=attempts, clock=stack.manager.clock
            )

    outcome = run_plan(
        spec, plan, schedule=controller, policy_factory=policy_factory
    )
    if args.trace:
        for step in outcome.stack.injector.trace:
            print(f"  {step.number:4d} {step.kind} {step.detail}")
    print(f"plan: {plan.describe()}")
    if outcome.crash is not None:
        print(f"crashed: step {outcome.crash.step} ({outcome.crash.kind})")
    elif outcome.model_error is not None:
        print(f"transient fault surfaced: {outcome.model_error!r}")
    else:
        print("run completed; power cut applied at end")
    print(f"recovery: {outcome.system.report!r}")
    print(outcome.oracle.describe())
    return 0 if outcome.ok else 1


if __name__ == "__main__":
    sys.exit(main())
