"""Self-validation mutations: break the system on purpose.

A chaos harness that never fails is indistinguishable from one that
checks nothing.  These context managers knock out exactly one known
correctness mechanism, in process and reversibly; the sensitivity tests
run a sweep (or a schedule exploration) under each mutation and assert
the oracles *do* fire — proving the harness can see the class of bug the
mechanism exists to prevent.

None of these are reachable from production code paths: they patch
classes at test time and restore them on exit, even on error.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.manager import TransactionManager
from repro.storage.buffer import BufferPool
from repro.storage.recovery import RecoveryManager


@contextmanager
def undo_disabled():
    """Recovery skips its undo phase: losers keep their effects.

    The crash sweep must report exact-state violations for any crash
    that leaves a loser's after image in the durable log.
    """
    original = RecoveryManager._undo

    def skip_undo(self, updates, responsibility, losers, report):
        return None

    RecoveryManager._undo = skip_undo
    try:
        yield
    finally:
        RecoveryManager._undo = original


@contextmanager
def wal_ordering_broken():
    """Dirty pages reach disk without forcing the log first.

    Breaks the write-ahead rule everywhere at once by making the pool's
    ``wal_flush`` hook unsettable (the storage manager *thinks* it wired
    the log force, but the pool discards it): a crash after a page
    write-back but before the next log flush leaves an effect on disk
    that the durable log cannot attribute or undo.  The sweep must catch
    the window.
    """

    def read_none(self):
        return None

    def discard(self, value):
        pass

    BufferPool.wal_flush = property(read_none, discard)
    try:
        yield
    finally:
        # Back to a plain data attribute: new pools assign their own
        # instance value in __init__; the class default stays None.
        del BufferPool.wal_flush
        BufferPool.wal_flush = None


@contextmanager
def dependency_dropped(dep_type):
    """``form_dependency`` silently ignores edges of ``dep_type``.

    The caller believes the edge exists; the scenario's *intent* list
    still records it; the ACTA oracles must notice the fate mismatch.
    """
    original = TransactionManager.form_dependency
    dropped_name = getattr(dep_type, "name", dep_type)

    def dropping(self, dt, ti, tj):
        if getattr(dt, "name", dt) == dropped_name:
            return None  # claim success, form nothing
        return original(self, dt, ti, tj)

    TransactionManager.form_dependency = dropping
    try:
        yield
    finally:
        TransactionManager.form_dependency = original


@contextmanager
def delegation_unlogged():
    """Delegations happen in memory but never reach the log.

    Restart recovery then mis-attributes delegated updates to the
    delegator: an update delegated from an aborting transaction to a
    committing one gets undone anyway.  The sweep's exact-state oracle
    must flag the divergence.
    """
    from repro.storage.store import StorageManager

    original = StorageManager.log_delegate

    def unlogged(self, tid, delegatee, oids):
        return None

    StorageManager.log_delegate = unlogged
    try:
        yield
    finally:
        StorageManager.log_delegate = original
