"""Deterministic fault injection: numbered I/O steps and fault plans.

Every instrumented I/O site in the storage stack — page writes, page-file
syncs, log appends, log flushes, buffer write-back boundaries, and
group-commit enrollments — reports to a :class:`FaultInjector` before it
performs its effect.  The injector numbers the steps (1, 2, 3, …), records
them as a trace, and consults its :class:`FaultPlan`:

* ``crash_at=k`` — raise :class:`CrashPoint` *instead of* performing step
  ``k``; the step's effect (and everything after) never happens, exactly
  like a process death between two system calls;
* ``torn_page_at=k`` — step ``k`` must be a page write; only a prefix of
  the new image reaches the platter (the old tail survives), then the
  process dies — the classic torn-write failure;
* ``lose_fsync_at={k, …}`` — step ``k`` must be a flush; it *reports
  success without making anything durable* — the lying-fsync failure mode
  of consumer drives and some virtualized block devices;
* ``crash_at_failpoint=(name, nth)`` — crash at the *nth* occurrence of a
  named semantic failpoint (the transaction manager's failure hooks),
  letting sweeps cut between semantic steps of commit/abort, not only
  between I/O calls;
* ``fail_flush_at={k, …}`` — step ``k`` must be a flush; it raises
  :class:`~repro.common.errors.TransientIOError` *without* crashing the
  process — the transient device error a retry policy is meant to
  absorb.  The injector stays armed, and the retried flush gets a fresh
  step number, so a single planned fault fails exactly once.

Crash tail behaviour is controlled by ``keep_tail``: on a real crash the
OS may or may not have written back volatile buffers, so the harness
models both extremes — ``keep_tail=False`` (default) loses every
unflushed log record, ``keep_tail=True`` persists them all.

Because step numbering is deterministic (the whole stack is), a plan plus
a scenario name is a complete reproduction recipe; :mod:`repro.chaos.replay`
turns one into a command line.

:class:`CrashPoint` derives from ``BaseException`` on purpose: the
simulated process death must not be swallowed by ``except Exception``
handlers in the code under test (the same reason ``KeyboardInterrupt``
does).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import TransientIOError


class CrashPoint(BaseException):
    """The simulated process death injected by a :class:`FaultInjector`."""

    def __init__(self, step, kind, detail=""):
        self.step = step
        self.kind = kind
        self.detail = detail
        super().__init__(f"injected crash at step {step} ({kind}{': ' + detail if detail else ''})")


# The fault-point taxonomy (see docs/internals.md, "The chaos harness").
PAGE_WRITE = "page_write"  # DiskManager.write_page
PAGE_SYNC = "page_sync"  # DiskManager.sync
LOG_APPEND = "log_append"  # log device append
LOG_FLUSH = "log_flush"  # log device flush (the durability point)
POOL_FLUSH = "pool_flush"  # buffer-pool write-back boundary
GC_ENROLL = "gc_enroll"  # FlushCoalescer commit enrollment
IO_KINDS = (PAGE_WRITE, PAGE_SYNC, LOG_APPEND, LOG_FLUSH, POOL_FLUSH, GC_ENROLL)

# Network steps: every message send on the simulated fabric is numbered
# through the same injector as the storage I/O, so one plan (and one
# step universe) covers both storage and network faults deterministically.
NET_MSG = "net_msg"  # NetworkFabric.send


@dataclass(frozen=True)
class IoStep:
    """One numbered I/O step as observed by the injector."""

    number: int
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of what should go wrong, and when.

    The default plan injects nothing — running under it only *counts*
    steps, which is how sweeps learn the step universe they must cover.
    """

    crash_at: int = None
    torn_page_at: int = None
    lose_fsync_at: frozenset = frozenset()
    fail_flush_at: frozenset = frozenset()
    crash_at_failpoint: tuple = None  # (name, nth occurrence)
    keep_tail: bool = False
    label: str = ""
    # Network faults (NET_MSG steps on the simulated fabric):
    # * ``drop_msg_at`` — the message sent at step k silently vanishes;
    # * ``drop_msg_kinds`` — every message of the named kinds vanishes
    #   (e.g. ``{"decision"}`` blacks out the whole commit release,
    #   including heartbeat-paced resends at step numbers no probe of a
    #   healthy run could predict) while the injector stays armed;
    # * ``dup_msg_at`` — it is delivered twice (at-least-once links);
    # * ``delay_msg_at`` — its delivery slips one pump round (reordering
    #   past everything sent in the same round);
    # * ``partition_at`` / ``heal_at`` — from step k (until step h, or
    #   forever) the fabric severs links between ``partition_groups``;
    # * ``site_crash_at=(site, k)`` — the named site loses power when
    #   message step k is sent (whichever site sent it);
    # * ``kill_coordinator_at=k`` — whichever site the cluster last
    #   installed as group-commit coordinator loses power at step k
    #   (the sweep need not know coordinator names in advance);
    # * ``join_site_at=(name, k)`` — a new site named ``name`` joins the
    #   cluster at step k (executed at the next cluster tick boundary);
    # * ``leave_site_at=(leaver, successor, k)`` — ``leaver`` begins an
    #   object-range handoff to ``successor`` at step k.
    drop_msg_at: frozenset = frozenset()
    drop_msg_kinds: frozenset = frozenset()
    dup_msg_at: frozenset = frozenset()
    delay_msg_at: frozenset = frozenset()
    partition_at: int = None
    heal_at: int = None
    partition_groups: tuple = ()
    site_crash_at: tuple = None  # (site name, step number)
    kill_coordinator_at: int = None
    join_site_at: tuple = None  # (site name, step number)
    leave_site_at: tuple = None  # (leaver, successor, step number)

    def __post_init__(self):
        object.__setattr__(
            self, "lose_fsync_at", frozenset(self.lose_fsync_at)
        )
        object.__setattr__(
            self, "fail_flush_at", frozenset(self.fail_flush_at)
        )
        object.__setattr__(self, "drop_msg_at", frozenset(self.drop_msg_at))
        object.__setattr__(
            self, "drop_msg_kinds", frozenset(self.drop_msg_kinds)
        )
        object.__setattr__(self, "dup_msg_at", frozenset(self.dup_msg_at))
        object.__setattr__(
            self, "delay_msg_at", frozenset(self.delay_msg_at)
        )
        object.__setattr__(
            self,
            "partition_groups",
            tuple(tuple(group) for group in self.partition_groups),
        )

    @property
    def is_noop(self):
        return (
            self.crash_at is None
            and self.torn_page_at is None
            and not self.lose_fsync_at
            and not self.fail_flush_at
            and self.crash_at_failpoint is None
            and not self.drop_msg_at
            and not self.drop_msg_kinds
            and not self.dup_msg_at
            and not self.delay_msg_at
            and self.partition_at is None
            and self.site_crash_at is None
            and self.kill_coordinator_at is None
            and self.join_site_at is None
            and self.leave_site_at is None
        )

    def describe(self):
        parts = []
        if self.crash_at is not None:
            parts.append(f"crash_at={self.crash_at}")
        if self.torn_page_at is not None:
            parts.append(f"torn_page_at={self.torn_page_at}")
        if self.lose_fsync_at:
            parts.append(f"lose_fsync_at={sorted(self.lose_fsync_at)}")
        if self.fail_flush_at:
            parts.append(f"fail_flush_at={sorted(self.fail_flush_at)}")
        if self.crash_at_failpoint is not None:
            parts.append(f"crash_at_failpoint={self.crash_at_failpoint}")
        if self.keep_tail:
            parts.append("keep_tail=True")
        if self.drop_msg_at:
            parts.append(f"drop_msg_at={sorted(self.drop_msg_at)}")
        if self.drop_msg_kinds:
            parts.append(f"drop_msg_kinds={sorted(self.drop_msg_kinds)}")
        if self.dup_msg_at:
            parts.append(f"dup_msg_at={sorted(self.dup_msg_at)}")
        if self.delay_msg_at:
            parts.append(f"delay_msg_at={sorted(self.delay_msg_at)}")
        if self.partition_at is not None:
            groups = "|".join(
                ",".join(group) for group in self.partition_groups
            )
            healed = f"..{self.heal_at}" if self.heal_at is not None else ""
            parts.append(
                f"partition_at={self.partition_at}{healed} ({groups})"
            )
        if self.site_crash_at is not None:
            parts.append(f"site_crash_at={self.site_crash_at}")
        if self.kill_coordinator_at is not None:
            parts.append(f"kill_coordinator_at={self.kill_coordinator_at}")
        if self.join_site_at is not None:
            parts.append(f"join_site_at={self.join_site_at}")
        if self.leave_site_at is not None:
            parts.append(f"leave_site_at={self.leave_site_at}")
        return ", ".join(parts) if parts else "no faults"

    def to_dict(self):
        """JSON-serializable form (the replay artifact format)."""
        return {
            "crash_at": self.crash_at,
            "torn_page_at": self.torn_page_at,
            "lose_fsync_at": sorted(self.lose_fsync_at),
            "fail_flush_at": sorted(self.fail_flush_at),
            "crash_at_failpoint": (
                list(self.crash_at_failpoint)
                if self.crash_at_failpoint is not None
                else None
            ),
            "keep_tail": self.keep_tail,
            "label": self.label,
            "drop_msg_at": sorted(self.drop_msg_at),
            "drop_msg_kinds": sorted(self.drop_msg_kinds),
            "dup_msg_at": sorted(self.dup_msg_at),
            "delay_msg_at": sorted(self.delay_msg_at),
            "partition_at": self.partition_at,
            "heal_at": self.heal_at,
            "partition_groups": [
                list(group) for group in self.partition_groups
            ],
            "site_crash_at": (
                list(self.site_crash_at)
                if self.site_crash_at is not None
                else None
            ),
            "kill_coordinator_at": self.kill_coordinator_at,
            "join_site_at": (
                list(self.join_site_at)
                if self.join_site_at is not None
                else None
            ),
            "leave_site_at": (
                list(self.leave_site_at)
                if self.leave_site_at is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data):
        failpoint = data.get("crash_at_failpoint")
        site_crash = data.get("site_crash_at")
        join_site = data.get("join_site_at")
        leave_site = data.get("leave_site_at")
        return cls(
            crash_at=data.get("crash_at"),
            torn_page_at=data.get("torn_page_at"),
            lose_fsync_at=frozenset(data.get("lose_fsync_at", ())),
            fail_flush_at=frozenset(data.get("fail_flush_at", ())),
            crash_at_failpoint=tuple(failpoint) if failpoint else None,
            keep_tail=bool(data.get("keep_tail", False)),
            label=data.get("label", ""),
            drop_msg_at=frozenset(data.get("drop_msg_at", ())),
            drop_msg_kinds=frozenset(data.get("drop_msg_kinds", ())),
            dup_msg_at=frozenset(data.get("dup_msg_at", ())),
            delay_msg_at=frozenset(data.get("delay_msg_at", ())),
            partition_at=data.get("partition_at"),
            heal_at=data.get("heal_at"),
            partition_groups=tuple(
                tuple(group) for group in data.get("partition_groups", ())
            ),
            site_crash_at=tuple(site_crash) if site_crash else None,
            kill_coordinator_at=data.get("kill_coordinator_at"),
            join_site_at=tuple(join_site) if join_site else None,
            leave_site_at=tuple(leave_site) if leave_site else None,
        )

    def with_(self, **changes):
        """A copy with fields replaced (sweep convenience)."""
        return replace(self, **changes)


# How much of a torn page survives: the first sector's worth of the new
# image lands, the rest of the page keeps its previous contents.
TORN_PREFIX = 512


@dataclass
class FaultInjector:
    """Counts I/O steps, records a trace, and fires the planned faults.

    One injector instruments one storage stack.  After a fault fires the
    injector *disarms*: post-mortem inspection and restart recovery run
    over the same devices without re-triggering the plan (arm a fresh
    injector to chaos-test recovery itself).
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    step_count: int = 0
    trace: list = field(default_factory=list)
    fired: IoStep = None
    armed: bool = True
    lied_fsyncs: int = 0
    failed_flushes: int = 0
    failpoint_counts: dict = field(default_factory=dict)

    # -- bookkeeping -------------------------------------------------------

    def disarm(self):
        """Stop injecting; steps are no longer counted either."""
        self.armed = False

    def _next(self, kind, detail=""):
        self.step_count += 1
        step = IoStep(self.step_count, kind, detail)
        self.trace.append(step)
        return step

    def _crash(self, step):
        self.fired = step
        self.armed = False
        raise CrashPoint(step.number, step.kind, step.detail)

    def _check_crash(self, step):
        if self.plan.crash_at == step.number:
            self._crash(step)

    # -- instrumented sites ------------------------------------------------

    def page_write(self, page_id, raw, install):
        """A page write: ``install(image)`` performs the actual store.

        ``install`` must accept an image *shorter* than a full page and
        overlay it onto the current on-disk image (the old tail survives)
        — that is how the torn write reaches the platter.
        """
        if not self.armed:
            install(raw)
            return
        step = self._next(PAGE_WRITE, f"page={page_id}")
        self._check_crash(step)
        if self.plan.torn_page_at == step.number:
            install(bytes(raw[:TORN_PREFIX]))  # the old tail survives
            self.fired = step
            self.armed = False
            raise CrashPoint(step.number, "torn_" + PAGE_WRITE, step.detail)
        install(raw)

    def page_sync(self, do_sync):
        """A page-file fsync."""
        if not self.armed:
            do_sync()
            return
        step = self._next(PAGE_SYNC)
        self._check_crash(step)
        do_sync()

    def log_append(self, nbytes, do_append):
        """A log-device append."""
        if not self.armed:
            do_append()
            return
        step = self._next(LOG_APPEND, f"bytes={nbytes}")
        self._check_crash(step)
        do_append()

    def log_flush(self, do_flush):
        """A log-device flush; may be *lied about* (lost fsync)."""
        if not self.armed:
            do_flush()
            return
        step = self._next(LOG_FLUSH)
        self._check_crash(step)
        if step.number in self.plan.fail_flush_at:
            # Transient device error: raise, stay armed.  A retry of the
            # flush is a *new* step number, so this fault fires once.
            self.failed_flushes += 1
            raise TransientIOError(
                f"injected transient flush failure at step {step.number}",
                op="log.flush",
            )
        if step.number in self.plan.lose_fsync_at:
            self.lied_fsyncs += 1
            return  # report success, make nothing durable
        do_flush()

    def pool_flush(self, dirty_count):
        """The boundary before a buffer pool writes back dirty pages."""
        if not self.armed:
            return
        step = self._next(POOL_FLUSH, f"dirty={dirty_count}")
        self._check_crash(step)

    def gc_enroll(self, pending_commits):
        """A commit enrolling in the group-commit flush batch."""
        if not self.armed:
            return
        step = self._next(GC_ENROLL, f"pending={pending_commits}")
        self._check_crash(step)

    def message(self, src, dst, kind):
        """A message send on the simulated fabric; returns a verdict.

        The verdict is ``(action, step)`` with ``action`` one of
        ``"deliver"``, ``"drop"``, ``"duplicate"``, ``"delay"`` (and
        ``step`` the recorded :class:`IoStep`, or ``None`` when the
        injector is disarmed).  Partition and site-crash effects are the
        fabric's job — it reads the plan and the step number itself —
        because they depend on fabric state (group membership, link
        endpoints) the injector deliberately knows nothing about.
        """
        if not self.armed:
            return "deliver", None
        step = self._next(NET_MSG, f"{src}->{dst}:{kind}")
        self._check_crash(step)
        if step.number in self.plan.drop_msg_at or kind in self.plan.drop_msg_kinds:
            return "drop", step
        if step.number in self.plan.dup_msg_at:
            return "duplicate", step
        if step.number in self.plan.delay_msg_at:
            return "delay", step
        return "deliver", step

    def failpoint(self, name):
        """A named semantic failpoint (transaction-manager failure hook).

        Failpoints have their own per-name occurrence numbering, separate
        from the I/O step counter: ``crash_at_failpoint=("abort.undone", 2)``
        crashes at the second time that point is reached.
        """
        if not self.armed:
            return
        count = self.failpoint_counts.get(name, 0) + 1
        self.failpoint_counts[name] = count
        target = self.plan.crash_at_failpoint
        if target is not None and target == (name, count):
            step = IoStep(self.step_count, f"failpoint:{name}", f"nth={count}")
            self._crash(step)

    # -- accounting --------------------------------------------------------

    def steps_of_kind(self, *kinds):
        """The numbers of recorded steps matching ``kinds`` (all if empty)."""
        if not kinds:
            return [step.number for step in self.trace]
        wanted = set(kinds)
        return [step.number for step in self.trace if step.kind in wanted]
