"""Oracles: what must be true after any crash, schedule, or fault.

Every predicate here is *independent* of the code it judges.  The
expected post-recovery state is computed by a small pure-function replay
of the durable log — no buffer pool, no recovery manager, just the record
semantics — so a bug in recovery cannot also hide in its oracle.  The
ACTA model properties reuse :mod:`repro.acta.checker`, fed with the
scenario's *intended* dependency set and fates derived from the durable
log, so even a mutated primitive that never formed its edge is judged
against what the scenario meant.

The invariants, stated once:

1. **Durability** — every commit the system durably acknowledged is a
   recovery winner (``acks ⊆ winners``).
2. **Atomicity of loss** — every transaction without a durable commit
   record has *no* effect in the recovered state: lost commits are
   indistinguishable from never-requested ones.
3. **Exact state** — the recovered store equals the pure replay of the
   durable log (winners' effects present, losers' undone, delegation
   honoured).
4. **ACTA model properties over durable fates** — group atomicity for GC
   pairs, abort propagation for AD pairs, commit order for CD pairs.
5. **Recovery idempotence** — running recovery again changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.acta.checker import (
    check_abort_dependencies,
    check_commit_order,
    check_group_atomicity,
)
from repro.storage.log import (
    AbortRecord,
    AfterImageRecord,
    BeforeImageRecord,
    CommitRecord,
    DecisionRecord,
    DelegateRecord,
    PrepareRecord,
    TakeoverRecord,
)


@dataclass
class LogAnalysis:
    """The durable log, digested: who won, who lost, who owns what."""

    winners: set = field(default_factory=set)
    losers: set = field(default_factory=set)
    already_aborted: set = field(default_factory=set)
    in_doubt: set = field(default_factory=set)
    updates: list = field(default_factory=list)
    responsibility: dict = field(default_factory=dict)  # lsn -> tid
    commit_positions: dict = field(default_factory=dict)  # tid -> index
    prepares: dict = field(default_factory=dict)  # gid -> PrepareRecord
    decisions: dict = field(default_factory=dict)  # gid -> verdict
    takeovers: dict = field(default_factory=dict)  # gid -> [TakeoverRecord]
    # Every verdict this site durably claimed or decided for a group —
    # a *set* per gid, because duplicates are legal (dueling same-epoch
    # takers, a resumed claim) while *conflicting* verdicts never are.
    group_verdicts: dict = field(default_factory=dict)  # gid -> {verdict}

    def fate(self, tid):
        """Durable fate of ``tid``: committed / aborted / in_doubt / active."""
        if tid in self.winners:
            return "committed"
        if (
            tid in self.losers
            or tid in self.already_aborted
        ):
            return "aborted"
        if tid in self.in_doubt:
            return "in_doubt"
        return "active"


def analyze_log(records):
    """Digest durable records into a :class:`LogAnalysis`.

    This deliberately re-implements the recovery manager's analysis from
    the record definitions alone — the independence is the point.
    """
    analysis = LogAnalysis()
    prepares = []
    for index, record in enumerate(records):
        if isinstance(record, CommitRecord):
            for tid in record.committed_tids():
                analysis.winners.add(tid)
                analysis.commit_positions.setdefault(tid, index)
        elif isinstance(record, DecisionRecord):
            analysis.decisions[record.gid] = record.verdict
            analysis.group_verdicts.setdefault(record.gid, set()).add(
                record.verdict
            )
            if record.verdict == "commit":
                for tid in record.decided_tids():
                    analysis.winners.add(tid)
                    analysis.commit_positions.setdefault(tid, index)
        elif isinstance(record, TakeoverRecord):
            analysis.takeovers.setdefault(record.gid, []).append(record)
            analysis.group_verdicts.setdefault(record.gid, set()).add(
                record.verdict
            )
        elif isinstance(record, PrepareRecord):
            prepares.append(record)
            analysis.prepares[record.gid] = record
        elif isinstance(record, AbortRecord):
            analysis.already_aborted.add(record.tid)
        elif isinstance(record, BeforeImageRecord):
            analysis.updates.append(record)
            analysis.responsibility[record.lsn] = record.tid
        elif isinstance(record, DelegateRecord):
            wanted = set(record.oids)
            for update in analysis.updates:
                if (
                    analysis.responsibility[update.lsn] == record.tid
                    and update.oid in wanted
                ):
                    analysis.responsibility[update.lsn] = record.delegatee
    for record in prepares:
        analysis.in_doubt |= (
            record.prepared_tids()
            - analysis.winners
            - analysis.already_aborted
        )
    responsible = set(analysis.responsibility.values())
    analysis.losers = (
        responsible
        - analysis.winners
        - analysis.already_aborted
        - analysis.in_doubt
    )
    return analysis


def expected_state(records, analysis=None, baseline=None):
    """Pure replay: the object state the durable log *implies*.

    Start from ``baseline`` (the committed state at the last truncating
    checkpoint — empty when the log holds the full history), repeat
    history (install every after image in order), then undo the losers
    (install their before images, newest first).  ``None`` images mean
    the object is absent.  Returns ``{oid_value: bytes}``.
    """
    if analysis is None:
        analysis = analyze_log(records)
    state = dict(baseline) if baseline else {}
    for record in records:
        if isinstance(record, AfterImageRecord):
            state[record.oid.value] = record.image
    for record in reversed(analysis.updates):
        if analysis.responsibility[record.lsn] in analysis.losers:
            state[record.oid.value] = record.image
    return {oid: image for oid, image in state.items() if image is not None}


@dataclass
class OracleReport:
    """The verdict of one oracle evaluation."""

    violations: list = field(default_factory=list)
    analysis: LogAnalysis = None
    label: str = ""

    @property
    def ok(self):
        return not self.violations

    def __bool__(self):
        return self.ok

    def fail(self, invariant, detail):
        self.violations.append(f"{invariant}: {detail}")

    def describe(self):
        if self.ok:
            return f"oracle OK ({self.label})" if self.label else "oracle OK"
        header = f"oracle VIOLATED ({self.label})" if self.label else "oracle VIOLATED"
        return "\n".join([header] + [f"  - {v}" for v in self.violations])


def evaluate_recovery(system, intent, durable_acks, label=""):
    """Run invariants 1-4 against a :class:`RestartedSystem`.

    ``system`` is what :meth:`ChaosStack.restart` returned; ``intent``
    the scenario's declared intentions; ``durable_acks`` the commits the
    stack acknowledged with a genuinely durable commit record.
    """
    from repro.chaos.stack import read_state

    report = OracleReport(label=label)
    records = system.durable_records
    analysis = analyze_log(records)
    report.analysis = analysis

    # 1. durability: every durable ack is a winner.
    for tid in durable_acks:
        if tid not in analysis.winners:
            report.fail(
                "durability",
                f"commit of {tid!r} was durably acknowledged but is not a"
                f" recovery winner",
            )

    # 2 + 3. exact state: the recovered store equals the pure replay.
    #    (Atomicity of loss is subsumed: a lost commit's transaction is a
    #    replay loser, so any surviving effect shows up as a mismatch.)
    expected = expected_state(records, analysis, baseline=intent.baseline)
    actual = read_state(system.storage)
    for oid_value in sorted(set(expected) | set(actual)):
        want = expected.get(oid_value)
        got = actual.get(oid_value)
        if want != got:
            report.fail(
                "state",
                f"object {oid_value}: recovered "
                f"{got!r}, durable log implies {want!r}",
            )

    # 4. ACTA model properties over durable fates and intended edges.
    fates = {}
    for __, ti, tj in intent.dependencies:
        fates.setdefault(ti, analysis.fate(ti))
        fates.setdefault(tj, analysis.fate(tj))
    deps = intent.dependencies
    for ti, fi, tj, fj in check_group_atomicity(None, deps, fates):
        report.fail(
            "group-atomicity",
            f"GC pair split: {ti!r} is {fi}, {tj!r} is {fj}",
        )
    for ti, tj in check_abort_dependencies(None, deps, fates):
        report.fail(
            "abort-dependency",
            f"AD({ti!r} -> {tj!r}): {ti!r} aborted but {tj!r} committed",
        )
    ticks = {
        tid: pos for tid, pos in analysis.commit_positions.items()
    }
    for ti, tj in check_commit_order(None, deps, ticks):
        report.fail(
            "commit-order",
            f"CD({ti!r} -> {tj!r}): {tj!r}'s commit record precedes {ti!r}'s",
        )
    return report


def check_idempotent(system, report=None):
    """Invariant 5: running recovery a second time changes nothing.

    Appends to ``report`` (or returns a fresh one).  The second pass must
    also report zero redo-able surprises on the undo side: every loser it
    sees was already finished with an abort record by the first pass.
    """
    from repro.chaos.stack import read_state

    if report is None:
        report = OracleReport(label="idempotence")
    before = read_state(system.storage)
    second = system.storage.recover()
    after = read_state(system.storage)
    if before != after:
        changed = sorted(
            oid
            for oid in set(before) | set(after)
            if before.get(oid) != after.get(oid)
        )
        report.fail(
            "idempotence",
            f"second recovery pass changed objects {changed}",
        )
    if second.losers:
        report.fail(
            "idempotence",
            f"second recovery pass still sees losers {sorted(t.value for t in second.losers)}"
            f" — the first pass did not finish them with abort records",
        )
    return report


def _global_fate(analysis, tid):
    """A member's durable fate, collapsed for cross-site judgment.

    ``active`` here means *no durable trace at all* — no updates it is
    responsible for, no outcome record.  Such a member has zero effects,
    which is observationally an abort (presumed abort says exactly
    this), so it collapses into ``aborted``.  ``in_doubt`` stays
    distinct: it is legal mid-partition and illegal after convergence.
    """
    fate = analysis.fate(tid)
    return "aborted" if fate == "active" else fate


def check_cross_site_atomicity(groups, site_analyses, report=None):
    """No site durably commits a group another site durably aborted.

    ``groups`` maps each global id to ``{"coordinator": site_name,
    "members": {site_name: tid}}`` — the *intended* membership recorded
    by the cluster driver before any protocol message was sent, so a
    mutated protocol that forgot a member is still judged against the
    full group.  ``site_analyses`` maps site names to the
    :class:`LogAnalysis` of that site's durable log.

    A member in doubt is not a violation here (that is what the
    convergence oracle checks); split brain is exactly one member
    durably committed while another durably aborted.
    """
    if report is None:
        report = OracleReport(label="cross-site-atomicity")
    for gid in sorted(groups):
        members = groups[gid]["members"]
        fates = {
            site: _global_fate(site_analyses[site], tid)
            for site, tid in sorted(members.items())
        }
        committed = [site for site, fate in fates.items() if fate == "committed"]
        aborted = [site for site, fate in fates.items() if fate == "aborted"]
        if committed and aborted:
            report.fail(
                "cross-site-atomicity",
                f"global {gid}: committed at {committed} but aborted at"
                f" {aborted} (split brain)",
            )
    return report


def check_cluster_convergence(groups, site_analyses, report=None):
    """After restart + healing + resolution, nobody is still in doubt.

    The liveness half of presumed abort: once every site is back up and
    every partition healed, in-doubt resolution (coordinator decision
    record, or no-information-implies-abort) must terminate every
    member.  Run this only after the harness has given the cluster its
    convergence rounds — mid-partition an in-doubt member is correct.
    """
    if report is None:
        report = OracleReport(label="convergence")
    for gid in sorted(groups):
        members = groups[gid]["members"]
        for site, tid in sorted(members.items()):
            fate = _global_fate(site_analyses[site], tid)
            if fate == "in_doubt":
                report.fail(
                    "convergence",
                    f"global {gid}: member {tid!r} at {site} is still in"
                    f" doubt after resolution",
                )
    return report


def check_no_dual_decision(groups, site_analyses, report=None):
    """No conflicting durable verdicts anywhere in the cluster for one gid.

    Coordinator failover makes *duplicate* decision records normal: the
    old coordinator may have logged ``commit``, and a recovery
    coordinator that later derived the same verdict logs it again (as
    may a dueling same-epoch taker, or a taker resuming a logged claim
    after its own crash).  What must never exist — in any site's log, in
    any takeover claim — is a ``commit`` *and* an ``abort`` for the same
    group.  That would mean an old coordinator and a usurper released
    opposite outcomes: split brain at the decision layer, even before
    any member applies it (cross-site atomicity only sees *applied*
    fates, so it can miss a dual decision whose loser side was never
    delivered).
    """
    if report is None:
        report = OracleReport(label="no-dual-decision")
    merged = {}  # gid -> verdict -> sorted site list
    for site in sorted(site_analyses):
        for gid, verdicts in site_analyses[site].group_verdicts.items():
            for verdict in verdicts:
                merged.setdefault(gid, {}).setdefault(verdict, []).append(site)
    for gid in sorted(merged):
        by_verdict = merged[gid]
        if len(by_verdict) > 1:
            detail = ", ".join(
                f"{verdict!r} at {sorted(set(sites))}"
                for verdict, sites in sorted(by_verdict.items())
            )
            report.fail(
                "no-dual-decision",
                f"global {gid}: conflicting durable verdicts: {detail}",
            )
    return report


def evaluate_cluster(groups, site_records, label="", converged=True):
    """Judge a whole cluster run from its durable logs.

    ``site_records`` maps site names to durable record lists; every
    site's log is digested independently, then the cross-site atomicity
    oracle (and, when ``converged``, the convergence oracle) runs over
    the intended group membership.  Returns ``(report, analyses)``.
    """
    report = OracleReport(label=label)
    analyses = {
        site: analyze_log(records) for site, records in site_records.items()
    }
    check_cross_site_atomicity(groups, analyses, report)
    check_no_dual_decision(groups, analyses, report)
    if converged:
        check_cluster_convergence(groups, analyses, report)
    return report, analyses


def check_degradation(health, report=None):
    """The degradation oracle: replay the flush-outcome trace independently.

    ``health`` is a :class:`~repro.resilience.FlushHealth` that observed a
    run.  Its ``outcomes`` list is the raw evidence — one ``("ok"|"fail",
    detail)`` entry per flush the breaker saw.  This oracle re-derives,
    from that trace and the configured thresholds alone, what the state
    machine *must* have done (string literals on purpose — importing the
    breaker's constants would let one rename bug hide in both places):

    * degrade exactly when ``degrade_after`` consecutive failures land
      while batching; re-promote exactly when ``repromote_after``
      consecutive successes land while degraded;
    * counters reset on every transition.

    The replayed final state and transition list (``from``/``to``/``at``
    triples) must equal what the breaker recorded.
    """
    if report is None:
        report = OracleReport(label="degradation")
    state = "batching"
    failures = successes = 0
    implied = []  # (from, to, at) triples
    for position, (kind, __) in enumerate(health.outcomes, start=1):
        if kind == "fail":
            failures += 1
            successes = 0
            if state == "batching" and failures >= health.degrade_after:
                implied.append(("batching", "degraded", position))
                state = "degraded"
                failures = successes = 0
        else:
            successes += 1
            failures = 0
            if state == "degraded" and successes >= health.repromote_after:
                implied.append(("degraded", "batching", position))
                state = "batching"
                failures = successes = 0
    if health.state != state:
        report.fail(
            "degradation",
            f"breaker reports {health.state!r} but the outcome trace"
            f" implies {state!r}",
        )
    recorded = [(t["from"], t["to"], t["at"]) for t in health.transitions]
    if recorded != implied:
        report.fail(
            "degradation",
            f"recorded transitions {recorded} != trace-implied {implied}",
        )
    return report
