"""The instrumented stack: one fault-injected system under test.

:class:`ChaosStack` assembles the whole reproduction — disk, log device,
write-ahead log, buffer pool, object store, transaction manager,
cooperative runtime, history recorder — with a single
:class:`~repro.chaos.faults.FaultInjector` threaded through every I/O
site and the manager's semantic failpoints.  A scenario drives the stack;
when the planned fault fires (a :class:`~repro.chaos.faults.CrashPoint`
escapes), :meth:`restart` models the process death — volatile state
abandoned, unflushed log records gone, a *fresh* storage stack rebuilt
over the surviving devices — and runs restart recovery, exactly the
sequence a real crash would produce.

The stack also keeps the books the oracles need:

* ``intent`` — what the scenario *meant* to happen (dependencies it
  formed, delegations it performed, the clean-run expected state),
  recorded *before* the corresponding primitive runs so it survives both
  crashes and deliberately mutated primitives;
* ``acks`` / ``durable_acks`` — commits the system acknowledged, split by
  whether the commit record was genuinely on stable storage at the
  acknowledgement (a lying fsync or a group-commit deferral window makes
  the system ack commits it cannot keep; only *durable* acks carry the
  durability guarantee the oracle enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.acta.history import HistoryRecorder
from repro.chaos.faults import FaultInjector, FaultPlan
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.storage.disk import InMemoryDiskManager
from repro.storage.log import CommitRecord, MemoryLogDevice, WriteAheadLog
from repro.storage.store import StorageManager


@dataclass
class RestartedSystem:
    """What exists after a simulated crash + restart recovery."""

    storage: StorageManager
    report: object  # RecoveryReport
    durable_records: list  # the log exactly as the restart found it

    def state(self):
        """``{oid_value: bytes}`` of every live object after recovery."""
        return read_state(self.storage)


def read_state(storage):
    """``{oid_value: bytes}`` snapshot of an object store's contents."""
    from repro.common.ids import ObjectId

    return {
        value: storage.objects.read(ObjectId(value))
        for value in storage.objects.object_ids()
    }


@dataclass
class Intent:
    """The scenario's declared intentions, recorded ahead of execution."""

    dependencies: list = field(default_factory=list)  # (type_name, ti, tj)
    delegations: list = field(default_factory=list)  # (source, target, oids)
    expected_clean: dict = field(default_factory=dict)  # oid_value -> bytes
    oids: dict = field(default_factory=dict)  # name -> ObjectId
    # The committed state at the last sharp (truncating) checkpoint.
    # After truncation the durable log no longer describes the full
    # history, so the replay oracle starts from this baseline instead of
    # from nothing.  Scenarios that truncate declare it at the moment
    # they checkpoint; empty means "the log is the whole story".
    baseline: dict = field(default_factory=dict)  # oid_value -> bytes


class ChaosStack:
    """A full ASSET stack wired to one fault injector."""

    def __init__(self, plan=None, group_commit=None, seed=None, schedule=None,
                 resilience=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.injector = FaultInjector(plan=self.plan)
        self.device = MemoryLogDevice(injector=self.injector)
        self.disk = InMemoryDiskManager(injector=self.injector)
        log = WriteAheadLog(self.device, group_commit=group_commit)
        self.storage = StorageManager(
            disk=self.disk, log=log, injector=self.injector
        )
        self.manager = TransactionManager(
            storage=self.storage, failpoint=self.injector.failpoint
        )
        self.runtime = CooperativeRuntime(
            self.manager, seed=seed, schedule=schedule
        )
        self.recorder = HistoryRecorder(self.manager)
        # Resilience layer (repro.resilience): ``resilience`` is None
        # (off) or a dict of install_resilience keyword overrides.  The
        # kit's watchdog/deadline handles hang off ``self.resilience``;
        # sweeps inject a RetryPolicy via ``self.retry_policy`` and
        # scenario drivers commit through :meth:`commit` which honours it.
        self.resilience = None
        if resilience is not None:
            from repro.resilience import install_resilience

            kwargs = dict(resilience) if isinstance(resilience, dict) else {}
            self.resilience = install_resilience(
                self.manager, self.runtime, **kwargs
            )
        self.retry_policy = None
        self.intent = Intent()
        self.acks = []  # every commit the system acknowledged
        self.durable_acks = []  # the subset genuinely on stable storage
        self.absorbed_acks = []  # acks absorbed by a truncating checkpoint
        self._tail_kept = False

    # -- intent bookkeeping (called by scenarios, ahead of the primitive) --

    def intend_dependency(self, dep_type, ti, tj):
        """Declare a dependency the scenario is about to form."""
        name = getattr(dep_type, "name", dep_type)
        self.intent.dependencies.append((name, ti, tj))

    def intend_delegation(self, source, target, oids):
        """Declare a delegation the scenario is about to perform."""
        self.intent.delegations.append((source, target, tuple(oids)))

    # -- acknowledgement bookkeeping ---------------------------------------

    def note_ack(self, *tids):
        """The system just told the client these commits succeeded.

        Each tid is classified truthfully: a *durable* ack has its commit
        record inside the device's genuinely-flushed prefix at this
        moment (peeking past any lying fsync).  The durability oracle
        holds the system to its durable acks only — an ack issued from a
        group-commit deferral window or over a lost fsync is a promise
        the hardware already broke.
        """
        for tid in tids:
            self.acks.append(tid)
            if self._commit_is_durable(tid):
                self.durable_acks.append(tid)

    def _commit_is_durable(self, tid):
        durable = self.device.durable_count()
        for index, record in enumerate(self.storage.log.records()):
            if index >= durable:
                break
            if isinstance(record, CommitRecord) and tid in record.committed_tids():
                return True
        return False

    def commit(self, tid, *group):
        """Drive a commit through the runtime and record the ack.

        When a :attr:`retry_policy` is attached (transient-fault sweeps),
        the commit runs under it: injected ``TransientIOError`` flushes
        are retried within the budget; an exhausted budget raises
        :class:`~repro.common.errors.RetryExhausted`.  The ack is only
        noted once the commit actually succeeded.
        """
        if self.retry_policy is None:
            ok = self.runtime.commit(tid)
        else:
            ok = self.retry_policy.run(
                lambda: self.runtime.commit(tid), op="commit", tid=tid
            )
        if ok:
            self.note_ack(tid, *group)
        return ok

    def note_truncation(self):
        """Declare an imminent sharp (truncating) checkpoint.

        The checkpoint's truncation removes every commit record from the
        log, so acknowledged commits so far can no longer be verified
        against it — their effects are absorbed into the declared
        baseline instead.  Called *before* the checkpoint, like all
        intent, so a crash anywhere inside it is judged correctly.
        """
        self.absorbed_acks.extend(self.acks)
        self.acks = []
        self.durable_acks = []

    # -- crash / restart ----------------------------------------------------

    def restart(self, recovery_injector=None):
        """Model the crash aftermath: reboot over the surviving devices.

        Everything volatile — buffer pool, object table, transaction
        manager, runtime — is abandoned.  The log device drops its
        unflushed tail (unless the plan says the OS happened to write it
        back: ``keep_tail``), a fresh write-ahead log re-reads what
        survived, a fresh storage stack is built over the same disk, and
        restart recovery runs.

        ``recovery_injector`` arms a *new* injector over the surviving
        devices so recovery's own I/O can be crashed (the idempotence
        tests); a :class:`~repro.chaos.faults.CrashPoint` it raises
        propagates to the caller, who simply calls :meth:`restart` again
        — as many times as it takes, like a machine in a reboot loop.
        """
        self.injector.disarm()
        if self.plan.keep_tail and not self._tail_kept:
            # The OS wrote back the volatile tail before the power went.
            self._tail_kept = True
            self.device._advance_durable()
        self.device.crash()
        if recovery_injector is not None:
            self.device.injector = recovery_injector
            self.disk.injector = recovery_injector
        log = WriteAheadLog(self.device)
        durable_records = log.records()
        storage = StorageManager(
            disk=self.disk, log=log, injector=recovery_injector
        )
        report = storage.recover()
        return RestartedSystem(
            storage=storage, report=report, durable_records=durable_records
        )
