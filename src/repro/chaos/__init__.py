"""The chaos harness: deterministic fault injection, schedule
exploration, and the oracles that judge what survives.

The reproduction's correctness story is only as strong as the failures
it has been run through.  This package makes failure a first-class,
enumerable input:

* :mod:`repro.chaos.faults` — numbered I/O steps, fault plans (crash,
  torn page write, lost fsync, semantic failpoints), and the injector
  threaded through every storage-layer I/O site;
* :mod:`repro.chaos.stack` — one fully instrumented system under test,
  with crash/restart lifecycle and truthful acknowledgement tracking;
* :mod:`repro.chaos.scenarios` — named deterministic workloads that
  declare their intent as they run;
* :mod:`repro.chaos.sweep` — exhaustive crash-point sweeps with
  step-coverage accounting and one-command replay artifacts;
* :mod:`repro.chaos.explorer` — interleaving enumeration over the
  cooperative runtime, with recorded, replayable, minimized schedules;
* :mod:`repro.chaos.oracles` — the independent invariants: durability of
  acknowledged commits, exact-state replay of the durable log, ACTA
  properties over durable fates, recovery idempotence;
* :mod:`repro.chaos.mutations` — deliberate in-process breakage that
  proves the oracles can see the bugs they exist for;
* :mod:`repro.chaos.replay` — the command-line counterexample replayer.

See docs/internals.md ("The chaos harness") for the fault-point taxonomy
and the replay workflow.
"""

from repro.chaos.explorer import (
    ExplorationResult,
    ScheduleController,
    ScheduleExplorer,
    ScheduleFailure,
    decode_choices,
    encode_choices,
)
from repro.chaos.faults import (
    CrashPoint,
    FaultInjector,
    FaultPlan,
    IO_KINDS,
    IoStep,
    TORN_PREFIX,
)
from repro.chaos.oracles import (
    OracleReport,
    analyze_log,
    check_idempotent,
    evaluate_recovery,
    expected_state,
)
from repro.chaos.stack import ChaosStack, RestartedSystem, read_state
from repro.chaos.sweep import (
    FailureArtifact,
    RunOutcome,
    SweepResult,
    crash_sweep,
    probe,
    replay_command,
    run_plan,
)

__all__ = [
    "ChaosStack",
    "CrashPoint",
    "ExplorationResult",
    "FailureArtifact",
    "FaultInjector",
    "FaultPlan",
    "IO_KINDS",
    "IoStep",
    "OracleReport",
    "RestartedSystem",
    "RunOutcome",
    "ScheduleController",
    "ScheduleExplorer",
    "ScheduleFailure",
    "SweepResult",
    "TORN_PREFIX",
    "analyze_log",
    "check_idempotent",
    "crash_sweep",
    "decode_choices",
    "encode_choices",
    "evaluate_recovery",
    "expected_state",
    "probe",
    "read_state",
    "replay_command",
    "run_plan",
]
