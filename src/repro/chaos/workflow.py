"""Workflow chaos: crash sweeps over durable workflow executions.

The durable workflow engine's claim is exactly the one this module
attacks: *a site crash at any I/O step of a running workflow loses
nothing* — restart recovery plus :meth:`DurableWorkflowEngine.recover`
resumes the execution from its last durable step and drives it to a
terminal status (completed, or fully compensated), with the standard
oracle battery green at the restart moment.

A :class:`WorkflowScenarioSpec` packages one such workload: a setup
phase that creates the durable inventory, a definition factory (bodies
close over the setup's oids, so the post-restart re-registration binds
to the surviving objects — the durable log stores definition *names*,
never code), a signal script, and a final-state check.  Scenarios are
registered in :data:`WORKFLOW_SCENARIOS` and resolvable from the replay
CLI (``python -m repro.chaos.replay workflow_travel_crash``).

Two runners share the scenario vocabulary:

* :func:`run_workflow_plan` — the flat-WAL path over a full
  :class:`~repro.chaos.stack.ChaosStack`: drive, crash, restart, judge
  with ``evaluate_recovery`` + ``check_idempotent``, then rebuild a
  manager/runtime/engine over the recovered storage, ``recover()``, and
  resume to terminal;
* :func:`run_sharded_workflow_plan` — the same schedule over the
  sharded segmented WAL (``ShardedStorageManager.crash()/recover()``
  restart in place), judged on terminal status, scenario checks, fold
  agreement, and no leaked transactions.

:func:`workflow_crash_sweep` enumerates ``crash_at=k`` for every
numbered I/O step of the scenario with coverage accounting, exactly like
:func:`repro.chaos.sweep.crash_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.faults import CrashPoint, FaultPlan
from repro.chaos.oracles import analyze_log, check_idempotent, evaluate_recovery
from repro.chaos.stack import ChaosStack
from repro.chaos.sweep import FailureArtifact, ScenarioBrokenError
from repro.common.codec import decode_int, decode_json, encode_int, encode_json
from repro.common.errors import AssetError
from repro.core.descriptors import TransactionStatus
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.workflow.definition import (
    DefinitionRegistry,
    WorkflowDefinition,
)
from repro.workflow.durable import DurableWorkflowEngine
from repro.workflow.execution import ExecutionStatus, fold_all
from repro.workflow.travel import (
    AIRLINES,
    TravelAgency,
    build_x_conference_spec,
)

MAX_DRIVE_ROUNDS = 64


@dataclass
class WorkflowScenarioSpec:
    """One registered workflow chaos workload."""

    name: str
    description: str
    setup: object            # (runtime, ctx) -> [setup tids to acknowledge]
    definition: object       # (ctx) -> WorkflowDefinition
    signals: tuple = ()      # ((signal, payload), ...) scripted deliveries
    expire_waits: bool = False  # fire timers for waits with no scripted signal
    expected_terminal: tuple = (ExecutionStatus.COMPLETED,)
    check: object = None     # (ctx, storage, execution) -> None (asserts)


WORKFLOW_SCENARIOS = {}


def register(spec):
    WORKFLOW_SCENARIOS[spec.name] = spec
    return spec


def get(name):
    if name not in WORKFLOW_SCENARIOS:
        known = ", ".join(sorted(WORKFLOW_SCENARIOS))
        raise KeyError(f"unknown workflow scenario {name!r} (known: {known})")
    return WORKFLOW_SCENARIOS[name]


def names():
    return sorted(WORKFLOW_SCENARIOS)


# ---------------------------------------------------------------------------
# driving
# ---------------------------------------------------------------------------


def _build_engine(runtime, spec, ctx, note_ack=None):
    registry = DefinitionRegistry()
    registry.register(spec.definition(ctx))
    return DurableWorkflowEngine(runtime, registry, on_commit=note_ack)


def drive_to_terminal(engine, wid, spec, signal_script=None):
    """Deliver scripted signals / fire timers until the run terminates."""
    pool = list(spec.signals if signal_script is None else signal_script)
    rounds = 0
    while not engine.status(wid).is_terminal:
        rounds += 1
        if rounds > MAX_DRIVE_ROUNDS:
            raise AssetError(
                f"workflow scenario {spec.name!r} made no progress after"
                f" {MAX_DRIVE_ROUNDS} drive rounds"
            )
        execution = engine.execution(wid)
        if execution.status is ExecutionStatus.WAITING_SIGNAL:
            # Skip script entries already durably delivered (a resumed
            # run remembers its signals; redelivery would be harmless
            # but pointless).
            pool = [
                (name, payload) for name, payload in pool
                if name not in execution.signals
            ]
            index = next(
                (
                    i for i, (name, __) in enumerate(pool)
                    if name == execution.waiting_signal
                ),
                None,
            )
            if index is not None:
                name, payload = pool.pop(index)
                engine.signal(wid, name, payload)
            elif spec.expire_waits and execution.wait_timeout is not None:
                engine.expire_wait(wid)
            else:
                raise AssetError(
                    f"scenario {spec.name!r} parked on signal"
                    f" {execution.waiting_signal!r} with no scripted"
                    " delivery and no timer"
                )
        else:
            engine.resume(wid)
    return engine.status(wid)


def _drive_scenario(stack, spec, ctx):
    """Setup + start + drive on a live (possibly fault-armed) stack."""
    setup_tids = spec.setup(stack.runtime, ctx)
    ctx["setup_done"] = True
    note_ack = getattr(stack, "note_ack", None)
    if note_ack is not None:
        for tid in setup_tids:
            note_ack(tid)
    engine = _build_engine(stack.runtime, spec, ctx, note_ack=note_ack)
    ctx["engine"] = engine
    # Pin the wid *before* start: a crash inside start() must still let
    # the post-restart judge find (and resume) the execution.
    ctx["wid"] = 1
    engine.start(spec.name, wid=ctx["wid"])
    drive_to_terminal(engine, ctx["wid"], spec)


# ---------------------------------------------------------------------------
# judging helpers
# ---------------------------------------------------------------------------


def live_transactions(manager):
    """Transactions still holding resources — must be zero at the end."""
    return sum(1 for td in manager.table if not td.status.is_terminated)


def _judge_final(spec, ctx, storage, engine, violations):
    """Terminal-phase checks shared by both storage paths."""
    wid = ctx.get("wid")
    if wid is None or wid not in engine.executions():
        # The crash predated the durable ``started`` record: there is no
        # execution to resume, and nothing further to hold the engine to.
        return None
    status = drive_to_terminal(engine, wid, spec)
    if status not in spec.expected_terminal:
        violations.append(
            f"{spec.name}: resumed execution ended {status}, expected one"
            f" of {[s.value for s in spec.expected_terminal]}"
        )
    execution = engine.execution(wid)
    if spec.check is not None:
        try:
            spec.check(ctx, storage, execution)
        except AssertionError as failed:
            violations.append(f"{spec.name}: final-state check: {failed}")
    leaked = live_transactions(engine.runtime.manager)
    if leaked:
        violations.append(
            f"{spec.name}: {leaked} transaction(s) leaked after the"
            " resumed run terminated"
        )
    # The fold oracle: the durable log alone must tell the same story
    # the live engine does (status and per-step outcomes).
    log_records = list(storage.log.records())
    winners = {
        getattr(tid, "value", tid)
        for tid in analyze_log(log_records).winners
    }
    folded = fold_all(log_records, winners).get(wid)
    if folded is None:
        violations.append(f"{spec.name}: wid {wid} vanished from the log")
    else:
        if folded.status is not execution.status:
            violations.append(
                f"{spec.name}: fold says {folded.status}, engine says"
                f" {execution.status}"
            )
        for name, state in execution.steps.items():
            if folded.status_of(name) is not state.status:
                violations.append(
                    f"{spec.name}: step {name!r} fold/engine disagree:"
                    f" {folded.status_of(name)} vs {state.status}"
                )
    return status


@dataclass
class WorkflowRunOutcome:
    """One faulted workflow run: crash, restart, resume, judgement."""

    plan: FaultPlan
    crash: object = None          # the CrashPoint, or None (clean run)
    oracle: object = None         # OracleReport (flat path only)
    status: object = None         # terminal ExecutionStatus, or None
    resumed: bool = False         # did recovery hand back an in-flight run?
    violations: list = field(default_factory=list)

    @property
    def ok(self):
        if self.oracle is not None and not self.oracle.ok:
            return False
        return not self.violations


# ---------------------------------------------------------------------------
# the flat-WAL runner (full oracle battery)
# ---------------------------------------------------------------------------


def run_workflow_plan(spec, plan, seed=0, instrument=None,
                      instrument_resume=None):
    """Drive ``spec`` under ``plan`` on a flat-WAL ChaosStack; crash,
    restart, judge with the standard oracles, then resume to terminal.

    ``instrument`` sees the pre-crash stack; ``instrument_resume`` sees
    the post-restart engine before ``recover()`` runs, so an attached
    observability kit folds the resumed half of the record stream.
    """
    stack = ChaosStack(plan=plan, seed=seed)
    if instrument is not None:
        instrument(stack)
    ctx = {}
    crash = None
    try:
        _drive_scenario(stack, spec, ctx)
    except CrashPoint as fired:
        crash = fired
    system = stack.restart()
    oracle = evaluate_recovery(
        system,
        stack.intent,
        stack.durable_acks,
        label=f"{spec.name}: {plan.describe()}",
    )
    check_idempotent(system, oracle)
    outcome = WorkflowRunOutcome(plan=plan, crash=crash, oracle=oracle)
    if not ctx.get("setup_done"):
        # Crashed inside setup: no definition can be rebuilt (its bodies
        # bind the setup's oids) and no execution can exist durably.
        return outcome
    manager = TransactionManager(storage=system.storage)
    runtime = CooperativeRuntime(manager, seed=seed)
    engine = _build_engine(runtime, spec, ctx)
    if instrument_resume is not None:
        instrument_resume(engine)
    recovered = engine.recover()
    outcome.resumed = ctx.get("wid") in recovered
    outcome.status = _judge_final(
        spec, ctx, system.storage, engine, outcome.violations
    )
    return outcome


# ---------------------------------------------------------------------------
# the sharded-WAL runner (differential twin)
# ---------------------------------------------------------------------------


class ShardedWorkflowStack:
    """A sharded stack with the crash/restart lifecycle sweeps need."""

    def __init__(self, plan=None, n_shards=4, seed=0):
        from repro.chaos.faults import FaultInjector
        from repro.core.sharded import ShardedTransactionManager
        from repro.runtime.sharded import ShardedRuntime
        from repro.storage.segmented import ShardedStorageManager

        self.plan = plan if plan is not None else FaultPlan()
        self.injector = FaultInjector(plan=self.plan)
        self.n_shards = n_shards
        self.seed = seed
        self.storage = ShardedStorageManager(
            n_shards=n_shards, injector=self.injector
        )
        self.manager = ShardedTransactionManager(
            n_shards=n_shards,
            storage=self.storage,
            failpoint=self.injector.failpoint,
        )
        self.runtime = ShardedRuntime(manager=self.manager, seed=seed)

    def restart(self):
        """Power cut + in-place segmented recovery; fresh manager/runtime."""
        from repro.core.sharded import ShardedTransactionManager
        from repro.runtime.sharded import ShardedRuntime

        self.injector.disarm()
        self.storage.crash()
        self.storage.recover()
        self.manager = ShardedTransactionManager(
            n_shards=self.n_shards, storage=self.storage
        )
        self.runtime = ShardedRuntime(manager=self.manager, seed=self.seed)
        return self.storage


def run_sharded_workflow_plan(spec, plan, n_shards=4, seed=0,
                              instrument_resume=None):
    """The same scenario through the sharded segmented WAL."""
    stack = ShardedWorkflowStack(plan=plan, n_shards=n_shards, seed=seed)
    ctx = {}
    crash = None
    try:
        _drive_scenario(stack, spec, ctx)
    except CrashPoint as fired:
        crash = fired
    stack.restart()
    outcome = WorkflowRunOutcome(plan=plan, crash=crash)
    if not ctx.get("setup_done"):
        return outcome
    engine = _build_engine(stack.runtime, spec, ctx)
    if instrument_resume is not None:
        instrument_resume(engine)
    recovered = engine.recover()
    outcome.resumed = ctx.get("wid") in recovered
    outcome.status = _judge_final(
        spec, ctx, stack.storage, engine, outcome.violations
    )
    return outcome


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


@dataclass
class WorkflowSweepResult:
    """Coverage accounting for one workflow crash sweep."""

    scenario: str
    storage: str = "flat"
    total_steps: int = 0
    crash_steps_covered: set = field(default_factory=set)
    runs: int = 0
    resumed_runs: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    @property
    def coverage_complete(self):
        return self.crash_steps_covered == set(range(1, self.total_steps + 1))

    def describe(self):
        lines = [
            f"workflow sweep of {self.scenario} ({self.storage}):"
            f" {self.runs} runs,"
            f" {len(self.crash_steps_covered)}/{self.total_steps} crash"
            f" steps, {self.resumed_runs} resumed,"
            f" {len(self.failures)} failures",
        ]
        for artifact in self.failures:
            lines.append(f"  plan: {artifact.plan}")
            lines += [f"    - {v}" for v in artifact.violations]
            if artifact.replay:
                lines.append(f"    replay: {artifact.replay}")
        return "\n".join(lines)


def probe_workflow(spec, storage="flat", n_shards=4, seed=0):
    """Clean run; returns the run's injector (its steps are the universe).

    Raises :class:`ScenarioBrokenError` when the clean run does not reach
    the scenario's expected terminal status with its checks green.
    """
    runner = run_workflow_plan if storage == "flat" else (
        lambda s, p, seed=seed: run_sharded_workflow_plan(
            s, p, n_shards=n_shards, seed=seed
        )
    )
    # A clean plan still restarts at the end (power cut after completion)
    # and must recover to the same terminal status.
    outcome = runner(spec, FaultPlan(label="clean"), seed=seed)
    if outcome.crash is not None:
        raise ScenarioBrokenError(
            f"{spec.name}: clean run crashed: {outcome.crash}"
        )
    if not outcome.ok:
        raise ScenarioBrokenError(
            f"{spec.name}: clean run failed its own checks:"
            f" {outcome.violations}"
            + (
                f" oracle: {outcome.oracle.violations}"
                if outcome.oracle is not None and not outcome.oracle.ok
                else ""
            )
        )
    if outcome.status not in spec.expected_terminal:
        raise ScenarioBrokenError(
            f"{spec.name}: clean run ended {outcome.status}"
        )
    return outcome


def _count_steps(spec, storage, n_shards, seed):
    """Number the scenario's I/O universe with a no-fault drive."""
    if storage == "flat":
        stack = ChaosStack(plan=FaultPlan(), seed=seed)
    else:
        stack = ShardedWorkflowStack(
            plan=FaultPlan(), n_shards=n_shards, seed=seed
        )
    ctx = {}
    _drive_scenario(stack, spec, ctx)
    return stack.injector.step_count


def workflow_replay_command(scenario_name, plan):
    from repro.chaos.sweep import replay_command

    return replay_command(scenario_name, plan)


def workflow_crash_sweep(spec, storage="flat", n_shards=4, seed=0,
                         stop_at_first=False):
    """Crash at every numbered I/O step; restart, recover, resume, judge."""
    probe_workflow(spec, storage=storage, n_shards=n_shards, seed=seed)
    total = _count_steps(spec, storage, n_shards, seed)
    result = WorkflowSweepResult(
        scenario=spec.name, storage=storage, total_steps=total
    )
    for step in range(1, total + 1):
        plan = FaultPlan(crash_at=step, label=f"crash@{step}")
        if storage == "flat":
            outcome = run_workflow_plan(spec, plan, seed=seed)
        else:
            outcome = run_sharded_workflow_plan(
                spec, plan, n_shards=n_shards, seed=seed
            )
        result.runs += 1
        result.crash_steps_covered.add(step)
        if outcome.resumed:
            result.resumed_runs += 1
        if not outcome.ok:
            violations = list(outcome.violations)
            if outcome.oracle is not None:
                violations.extend(outcome.oracle.violations)
            result.failures.append(
                FailureArtifact(
                    scenario=spec.name,
                    plan=plan.to_dict(),
                    violations=violations,
                    crash_step=(
                        f"{outcome.crash.step}:{outcome.crash.kind}"
                        if outcome.crash is not None
                        else None
                    ),
                    replay=workflow_replay_command(spec.name, plan),
                )
            )
            if stop_at_first:
                return result
    return result


# ---------------------------------------------------------------------------
# registered scenarios
# ---------------------------------------------------------------------------


def _travel_setup(availability):
    def setup(runtime, ctx):
        agency = TravelAgency(runtime, availability=availability)
        ctx["agency"] = agency
        ctx["oids"] = {name: oid for name, oid in agency.oids.items()}
        # TravelAgency's constructor ran one committed setup transaction;
        # its tid is not exposed, so re-derive it for the ack books: it
        # is the lone winner so far.
        return [
            td.tid for td in runtime.manager.table
            if td.status is TransactionStatus.COMMITTED
        ]

    return setup


def _travel_definition(name, waits=None):
    def definition(ctx):
        agency = ctx["agency"]
        spec = build_x_conference_spec(agency)

        # Give the hotel its own compensation so "fully compensated"
        # restores the whole inventory, whichever prefix committed.
        def cancel_hotel(tx):
            record = decode_json(
                (yield tx.read(agency.hotels["Equator"]))
            )
            booking = ["6/11/1994", "6/14/1994"]
            if booking in record["bookings"]:
                record["bookings"].remove(booking)
                record["available"] += 1
                yield tx.write(
                    agency.hotels["Equator"], encode_json(record)
                )
            return record["available"]

        hotel = next(task for task in spec if task.name == "hotel")
        hotel.compensate_with(cancel_hotel)
        return WorkflowDefinition(name, spec, waits=waits)

    return definition


def _read_raw(storage, oid):
    """Read one object's bytes from either storage engine."""
    value = getattr(oid, "value", oid)
    object_state = getattr(storage, "object_state", None)
    if object_state is not None:  # ShardedStorageManager
        return object_state()[value]
    from repro.common.ids import ObjectId

    return storage.objects.read(ObjectId(value))


def _booked(storage, ctx, name):
    """Booking count of one travel resource straight from storage."""
    return len(decode_json(_read_raw(storage, ctx["oids"][name]))["bookings"])


def _check_travel_completed(ctx, storage, execution):
    flights = sum(_booked(storage, ctx, a) for a in AIRLINES)
    assert flights == 1, f"expected exactly one flight booking, saw {flights}"
    assert _booked(storage, ctx, "Equator") == 1, "hotel booking missing"
    cars = sum(_booked(storage, ctx, c) for c in ("National", "Avis"))
    assert cars == 1, f"expected exactly one car booking, saw {cars}"


def _check_travel_compensated(ctx, storage, execution):
    # Fully compensated: the inventory is exactly as the setup left it.
    for name in list(AIRLINES) + ["Equator", "National", "Avis"]:
        booked = _booked(storage, ctx, name)
        assert booked == 0, f"{name} still shows {booked} booking(s)"


register(WorkflowScenarioSpec(
    name="workflow_travel_crash",
    description=(
        "The appendix travel workflow (contingent flight, required hotel,"
        " raced car) runs to completion through the durable engine; a"
        " crash at any I/O step must resume to COMPLETED with exactly one"
        " booking per resource class."
    ),
    setup=_travel_setup(availability=None),
    definition=_travel_definition("workflow_travel_crash"),
    expected_terminal=(ExecutionStatus.COMPLETED,),
    check=_check_travel_completed,
))


def _set_value(tx, oid, value):
    yield tx.write(oid, encode_int(value))
    return value


def _signal_setup(runtime, ctx):
    def setup(tx):
        oids = {}
        oids["order"] = yield tx.create(encode_int(0), name="order")
        oids["audit"] = yield tx.create(encode_int(0), name="audit")
        return oids

    result = runtime.run(setup)
    ctx["oids"] = result.value
    return [result.tid]


def _approval_definition(name, timeout=40, on_timeout="fail"):
    """place → (wait for "approve") → confirm; place is compensable."""

    def definition(ctx):
        from repro.workflow.spec import WorkflowSpec

        oids = ctx["oids"]
        spec = WorkflowSpec(name=f"{name}_spec")
        place = spec.task("place")
        place.alternative(_set_value, args=(oids["order"], 1), label="place")
        place.compensate_with(_set_value, args=(oids["order"], 0))
        confirm = spec.task("confirm", depends_on=("place",))
        confirm.alternative(
            _set_value, args=(oids["audit"], 1), label="confirm"
        )
        return WorkflowDefinition(name, spec).wait_for(
            "confirm", "approve", timeout=timeout, on_timeout=on_timeout
        )

    return definition


def _value_of(storage, ctx, name):
    return decode_int(_read_raw(storage, ctx["oids"][name]))


def _check_signal_timeout(ctx, storage, execution):
    assert _value_of(storage, ctx, "order") == 0, (
        "place was not compensated after the approval timeout"
    )
    assert _value_of(storage, ctx, "audit") == 0, (
        "confirm ran despite the approval never arriving"
    )


def _check_signal_delivered(ctx, storage, execution):
    assert _value_of(storage, ctx, "order") == 1, "place lost"
    assert _value_of(storage, ctx, "audit") == 1, "confirm lost"
    assert execution.signals.get("approve") == "qa", (
        "delivered signal payload lost"
    )


register(WorkflowScenarioSpec(
    name="workflow_signal_timeout",
    description=(
        "A place→confirm workflow parked on an \"approve\" signal whose"
        " timer expires: the required confirm step fails on timeout, so"
        " the committed place step must be compensated — through any"
        " crash point, including mid-compensation."
    ),
    setup=_signal_setup,
    definition=_approval_definition(
        "workflow_signal_timeout", timeout=40, on_timeout="fail"
    ),
    expire_waits=True,
    expected_terminal=(ExecutionStatus.COMPENSATED,),
    check=_check_signal_timeout,
))


register(WorkflowScenarioSpec(
    name="workflow_signal_delivered",
    description=(
        "The approval workflow with the \"approve\" signal scripted: the"
        " durable signal record must survive crashes, so a resumed run"
        " never re-parks on a signal it already received."
    ),
    setup=_signal_setup,
    definition=_approval_definition(
        "workflow_signal_delivered", timeout=40, on_timeout="fail"
    ),
    signals=(("approve", "qa"),),
    expected_terminal=(ExecutionStatus.COMPLETED,),
    check=_check_signal_delivered,
))


register(WorkflowScenarioSpec(
    name="workflow_travel_sellout",
    description=(
        "The travel workflow against a sold-out hotel: the flight books,"
        " the required hotel fails, and the saga must unwind — any crash"
        " must still resume to COMPENSATED with the inventory restored."
    ),
    setup=_travel_setup(availability={"Equator": 0}),
    definition=_travel_definition("workflow_travel_sellout"),
    expected_terminal=(ExecutionStatus.COMPENSATED,),
    check=_check_travel_compensated,
))
