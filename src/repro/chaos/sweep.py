"""Exhaustive crash-point sweeps.

The sweep turns "crash anywhere" from a slogan into an enumeration:

1. **Probe** — run the scenario under a no-fault plan.  The injector
   numbers every I/O step (1..N) and counts every semantic failpoint
   occurrence; that trace *is* the universe a sweep must cover.  The
   probe also sanity-checks the scenario: its clean run must land in the
   state it declared.
2. **Sweep** — one full scenario run per fault: ``crash_at=k`` for every
   step *k*, a torn write at every page-write step, a lost fsync at
   every flush step (with a power cut at the end of the run, so the lie
   has a crash to matter at), and a crash at every semantic failpoint
   occurrence.  Each run crashes, restarts over the surviving devices,
   recovers, and faces the full oracle battery (durability, exact state,
   ACTA fates, idempotence).
3. **Account** — the result records exactly which step numbers were
   crashed; tests assert the covered set equals ``{1..N}``, so silently
   skipped crash points are impossible.

Every failing run yields a :class:`FailureArtifact` whose ``replay``
field is a complete one-command reproduction recipe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.chaos.faults import (
    CrashPoint,
    FaultPlan,
    LOG_FLUSH,
    PAGE_WRITE,
)
from repro.chaos.oracles import check_idempotent, evaluate_recovery
from repro.chaos.stack import read_state
from repro.common.errors import RetryExhausted, TransientIOError


class ScenarioBrokenError(AssertionError):
    """The scenario's clean run does not match its declared intent."""


@dataclass
class RunOutcome:
    """One faulted scenario run, restarted and judged."""

    plan: FaultPlan
    crash: CrashPoint  # None when the run completed (lost-fsync plans)
    oracle: object  # OracleReport
    system: object  # RestartedSystem
    stack: object  # the (dead) pre-crash ChaosStack
    # A transient fault the model surfaced instead of absorbing: the
    # TransientIOError (no retry policy attached) or RetryExhausted
    # (budget spent) that escaped the scenario driver.  The run still
    # gets its power cut, restart, and oracle judgement — an error
    # surfaced to the client must never leave the durable state wrong.
    model_error: object = None

    @property
    def ok(self):
        return self.oracle.ok


@dataclass
class FailureArtifact:
    """A reproducible counterexample: plan + violations + replay recipe."""

    scenario: str
    plan: dict
    violations: list
    crash_step: object = None
    replay: str = ""

    def to_json(self):
        return json.dumps(
            {
                "scenario": self.scenario,
                "plan": self.plan,
                "violations": self.violations,
                "crash_step": self.crash_step,
                "replay": self.replay,
            },
            indent=2,
            default=str,
        )


def replay_command(scenario_name, plan):
    """The one-command reproduction recipe for a failing plan."""
    return (
        "PYTHONPATH=src python -m repro.chaos.replay "
        f"{scenario_name} --plan '{json.dumps(plan.to_dict())}'"
    )


@dataclass
class SweepResult:
    """Everything one sweep covered, and everything it found."""

    scenario: str
    total_steps: int = 0
    step_kinds: dict = field(default_factory=dict)  # number -> kind
    failpoint_universe: dict = field(default_factory=dict)  # name -> count
    crash_steps_covered: set = field(default_factory=set)
    torn_steps_covered: set = field(default_factory=set)
    lost_fsync_steps_covered: set = field(default_factory=set)
    failpoints_covered: set = field(default_factory=set)  # (name, nth)
    runs: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    @property
    def coverage_complete(self):
        """Did the crash sweep hit *every* numbered I/O step?"""
        return self.crash_steps_covered == set(
            range(1, self.total_steps + 1)
        )

    def describe(self):
        lines = [
            f"sweep of {self.scenario}: {self.runs} runs,"
            f" {len(self.crash_steps_covered)}/{self.total_steps} crash"
            f" steps, {len(self.torn_steps_covered)} torn,"
            f" {len(self.lost_fsync_steps_covered)} lost-fsync,"
            f" {len(self.failpoints_covered)} failpoints,"
            f" {len(self.failures)} failures",
        ]
        for artifact in self.failures:
            lines.append(f"  plan: {artifact.plan}")
            lines += [f"    - {v}" for v in artifact.violations]
            lines.append(f"    replay: {artifact.replay}")
        return "\n".join(lines)


def probe(spec):
    """Run the scenario clean; return its stack (trace, failpoints, state).

    Raises :class:`ScenarioBrokenError` when the clean run does not land
    in the scenario's declared ``expected_clean`` state — a broken
    scenario would make every sweep verdict meaningless.
    """
    stack = spec.build_stack(plan=FaultPlan())
    spec.drive(stack)
    expected = stack.intent.expected_clean
    if expected:
        actual = read_state(stack.storage)
        wrong = {
            oid: (actual.get(oid), want)
            for oid, want in expected.items()
            if actual.get(oid) != want
        }
        if wrong:
            raise ScenarioBrokenError(
                f"{spec.name}: clean run deviates from declared state:"
                f" {wrong}"
            )
    return stack


def run_plan(spec, plan, schedule=None, policy_factory=None, instrument=None):
    """One faulted run: drive, crash (maybe), restart, recover, judge.

    ``policy_factory`` (transient-fault sweeps) is called with the fresh
    stack and returns the :class:`~repro.resilience.RetryPolicy` to attach
    as ``stack.retry_policy`` before driving.  A transient fault the
    driver could not absorb — :class:`TransientIOError` with no policy,
    :class:`RetryExhausted` with a spent budget — is captured as the
    outcome's ``model_error`` rather than propagated: the client saw an
    error, and the run is still judged for durable-state correctness.

    ``instrument`` is called with the freshly built stack before anything
    drives it — the hook ``repro.obs`` (and the replay CLI's
    ``--metrics-out``/``--trace-out``) uses to attach observers.
    """
    stack = spec.build_stack(plan=plan, schedule=schedule)
    if instrument is not None:
        instrument(stack)
    if policy_factory is not None:
        stack.retry_policy = policy_factory(stack)
    crash = None
    model_error = None
    try:
        spec.drive(stack)
    except CrashPoint as fired:
        crash = fired
    except (TransientIOError, RetryExhausted) as surfaced:
        model_error = surfaced
    # Runs that complete (lost-fsync plans) get a power cut here: the
    # injected lie only matters once the unflushed tail is actually lost.
    system = stack.restart()
    oracle = evaluate_recovery(
        system,
        stack.intent,
        stack.durable_acks,
        label=f"{spec.name}: {plan.describe()}",
    )
    check_idempotent(system, oracle)
    return RunOutcome(
        plan=plan, crash=crash, oracle=oracle, system=system, stack=stack,
        model_error=model_error,
    )


def crash_sweep(
    spec,
    keep_tail_modes=(False,),
    include_torn=True,
    include_lost_fsync=True,
    include_failpoints=True,
    stop_at_first=False,
):
    """Sweep every numbered step (and variant) of one scenario."""
    probe_stack = probe(spec)
    injector = probe_stack.injector
    result = SweepResult(
        scenario=spec.name,
        total_steps=injector.step_count,
        step_kinds={s.number: s.kind for s in injector.trace},
        failpoint_universe=dict(injector.failpoint_counts),
    )

    def judge(plan, covered_set, covered_key):
        outcome = run_plan(spec, plan)
        result.runs += 1
        covered_set.add(covered_key)
        if not outcome.ok:
            result.failures.append(
                FailureArtifact(
                    scenario=spec.name,
                    plan=plan.to_dict(),
                    violations=list(outcome.oracle.violations),
                    crash_step=(
                        f"{outcome.crash.step}:{outcome.crash.kind}"
                        if outcome.crash is not None
                        else None
                    ),
                    replay=replay_command(spec.name, plan),
                )
            )
        return outcome

    for keep_tail in keep_tail_modes:
        for step in range(1, injector.step_count + 1):
            plan = FaultPlan(
                crash_at=step,
                keep_tail=keep_tail,
                label=f"crash@{step}" + ("+tail" if keep_tail else ""),
            )
            judge(plan, result.crash_steps_covered, step)
            if stop_at_first and result.failures:
                return result

    if include_torn:
        for step in injector.steps_of_kind(PAGE_WRITE):
            plan = FaultPlan(torn_page_at=step, label=f"torn@{step}")
            judge(plan, result.torn_steps_covered, step)
            if stop_at_first and result.failures:
                return result

    if include_lost_fsync:
        for step in injector.steps_of_kind(LOG_FLUSH):
            plan = FaultPlan(
                lose_fsync_at=frozenset([step]), label=f"lost-fsync@{step}"
            )
            judge(plan, result.lost_fsync_steps_covered, step)
            if stop_at_first and result.failures:
                return result

    if include_failpoints:
        for name, count in sorted(injector.failpoint_counts.items()):
            for nth in range(1, count + 1):
                plan = FaultPlan(
                    crash_at_failpoint=(name, nth),
                    label=f"failpoint {name}#{nth}",
                )
                judge(plan, result.failpoints_covered, (name, nth))
                if stop_at_first and result.failures:
                    return result

    return result


@dataclass
class TransientSweepResult:
    """One transient-fault sweep: which flush steps the retries absorbed."""

    scenario: str
    flush_steps: tuple = ()  # the LOG_FLUSH step universe from the probe
    runs: int = 0
    covered: set = field(default_factory=set)
    absorbed_steps: set = field(default_factory=set)  # retried to success
    exhausted_steps: set = field(default_factory=set)  # surfaced to client
    failures: list = field(default_factory=list)  # oracle FailureArtifacts

    @property
    def ok(self):
        return not self.failures

    @property
    def coverage_complete(self):
        return self.covered == set(self.flush_steps)

    @property
    def all_absorbed(self):
        """Did the retry budget absorb every injected transient fault?"""
        return self.coverage_complete and not self.exhausted_steps

    def describe(self):
        lines = [
            f"transient sweep of {self.scenario}: {self.runs} runs,"
            f" {len(self.covered)}/{len(self.flush_steps)} flush steps,"
            f" {len(self.absorbed_steps)} absorbed,"
            f" {len(self.exhausted_steps)} exhausted,"
            f" {len(self.failures)} failures",
        ]
        for artifact in self.failures:
            lines.append(f"  plan: {artifact.plan}")
            lines += [f"    - {v}" for v in artifact.violations]
            lines.append(f"    replay: {artifact.replay}")
        return "\n".join(lines)


def transient_fault_sweep(spec, policy_factory=None, stop_at_first=False):
    """Inject one transient flush failure per LOG_FLUSH step of ``spec``.

    The probe enumerates the scenario's flush steps; each sweep run plans
    ``fail_flush_at={step}`` — the flush raises
    :class:`~repro.common.errors.TransientIOError` exactly once — and
    attaches ``policy_factory(stack)`` as the stack's retry policy.

    * With a live retry budget every fault is *absorbed*: one retried
      flush succeeds, the driver completes, and the oracles must pass.
    * With ``policy_factory=None`` or a zero-budget policy the fault
      *surfaces* (``TransientIOError`` / ``RetryExhausted`` recorded in
      ``exhausted_steps``) — and the run is still judged: an error
      returned to the client never excuses a wrong durable state.
    """
    probe_stack = probe(spec)
    flush_steps = tuple(probe_stack.injector.steps_of_kind(LOG_FLUSH))
    result = TransientSweepResult(scenario=spec.name, flush_steps=flush_steps)
    for step in flush_steps:
        plan = FaultPlan(
            fail_flush_at=frozenset([step]), label=f"transient-flush@{step}"
        )
        outcome = run_plan(spec, plan, policy_factory=policy_factory)
        result.runs += 1
        result.covered.add(step)
        if outcome.model_error is not None:
            result.exhausted_steps.add(step)
        else:
            result.absorbed_steps.add(step)
        if not outcome.ok:
            result.failures.append(
                FailureArtifact(
                    scenario=spec.name,
                    plan=plan.to_dict(),
                    violations=list(outcome.oracle.violations),
                    replay=replay_command(spec.name, plan),
                )
            )
            if stop_at_first:
                return result
    return result
