"""Graceful degradation: flush-health state machine and read-path quarantine.

Two independent degradation mechanisms live here:

:class:`FlushHealth`
    The FlushCoalescer's circuit breaker.  Group-commit batching trades
    latency for fewer fsyncs — a trade that only pays while the log
    device is honest and healthy.  After ``degrade_after`` *consecutive*
    flush failures (raised faults or detected lying fsyncs) the machine
    drops to ``degraded``: the coalescer stops batching and every commit
    flushes synchronously, shrinking the window a bad device can hold
    acknowledged-but-volatile commits.  After ``repromote_after``
    consecutive healthy flushes it re-promotes to ``batching``.  Every
    outcome and transition is recorded so the chaos oracle can replay
    the trace independently.

:class:`QuarantineRegistry`
    The escalation path from structural torn-page quarantine (recovery
    resets a damaged page and remembers it) to the read path: an object
    registered here poisons any transaction that touches it — the
    storage manager raises
    :class:`~repro.common.errors.QuarantinedObjectError` and the
    transaction manager aborts the toucher rather than let it propagate
    garbage.
"""

from __future__ import annotations

from repro.common.errors import QuarantinedObjectError

__all__ = ["FlushHealth", "QuarantineRegistry", "BATCHING", "DEGRADED"]

BATCHING = "batching"
DEGRADED = "degraded"


class FlushHealth:
    """Consecutive-failure circuit breaker for group-commit batching."""

    def __init__(self, degrade_after=3, repromote_after=8):
        self.degrade_after = degrade_after
        self.repromote_after = repromote_after
        self.state = BATCHING
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.outcomes = []  # ("ok"|"fail", detail) per observed flush
        self.transitions = []  # {"from", "to", "event", "at"} per flip

    @property
    def degraded(self):
        return self.state == DEGRADED

    def note_failure(self, detail=""):
        """One flush failed (raised, or the device lied about durability)."""
        self.outcomes.append(("fail", detail))
        self.consecutive_failures += 1
        self.consecutive_successes = 0
        if self.state == BATCHING and self.consecutive_failures >= self.degrade_after:
            self._transition(DEGRADED, detail or "consecutive flush failures")
        return self.state

    def note_success(self, detail=""):
        """One flush verified healthy."""
        self.outcomes.append(("ok", detail))
        self.consecutive_successes += 1
        self.consecutive_failures = 0
        if self.state == DEGRADED and self.consecutive_successes >= self.repromote_after:
            self._transition(BATCHING, detail or "healthy window complete")
        return self.state

    def _transition(self, target, event):
        self.transitions.append(
            {
                "from": self.state,
                "to": target,
                "event": event,
                "at": len(self.outcomes),
            }
        )
        self.state = target
        self.consecutive_failures = 0
        self.consecutive_successes = 0


class QuarantineRegistry:
    """Objects too damaged to serve, and the transactions they poisoned."""

    def __init__(self):
        self.objects = {}  # oid -> reason
        self.poisoned = {}  # tid -> set of oids it touched while quarantined
        self.damaged_pages = []  # page ids the structural quarantine reset

    def note_damaged_page(self, page_id):
        """Record a page the torn-page quarantine reset during rebuild.

        The page reset happens before the page's objects are readable, so
        the oid mapping is lost — triage registers specific oids via
        :meth:`quarantine_object` once it knows which objects redo could
        not heal.
        """
        if page_id not in self.damaged_pages:
            self.damaged_pages.append(page_id)

    def quarantine_object(self, oid, reason="damaged page"):
        """Mark ``oid`` unservable; reads/writes now poison the toucher."""
        self.objects.setdefault(oid, reason)

    def lift(self, oid):
        """Remove ``oid`` from quarantine (repaired / restored)."""
        self.objects.pop(oid, None)

    def is_quarantined(self, oid):
        return oid in self.objects

    def check(self, tid, oid, op="read"):
        """Raise (and poison ``tid``) if ``oid`` is quarantined."""
        if oid in self.objects:
            self.poison(tid, oid)
            raise QuarantinedObjectError(oid, tid=tid, op=op)

    def poison(self, tid, oid):
        """Record that ``tid`` touched quarantined ``oid``."""
        self.poisoned.setdefault(tid, set()).add(oid)

    def is_poisoned(self, tid):
        return tid in self.poisoned
