"""The deterministic-clock watchdog: reaps expired and orphaned transactions.

The watchdog is the enforcement half of the deadline/lease story (the
bookkeeping half is :class:`~repro.resilience.deadlines.DeadlineTable`).
It runs on the same :class:`~repro.common.clock.LogicalClock` as
everything else, so chaos runs reproduce watchdog decisions exactly:

* :meth:`on_round` — the cooperative runtime calls this once per
  scheduler round; it ticks the clock and scans every
  ``scan_interval`` ticks.
* :meth:`on_stall` — called when the scheduler can make no progress.
  Instead of raising :class:`SchedulerStalledError` immediately, the
  runtime gives the watchdog one shot at *time travel*: jump the logical
  clock to the earliest armed expiry and scan.  If that reaps someone,
  the abort delivery un-wedges the schedule; if nothing is armed the
  genuine stall diagnostics still surface.
* :meth:`scan` — the actual reaping pass, callable directly (the
  threaded runtime's wall-clock watchdog loop does).

Each reap records **containment accounting**: the victim's abort
closure previewed from the dependency graph (group-commit members plus
AD/BCD dependents, transitively) *before* the abort runs, so operators
can see how far each watchdog abort cascaded.  In the same step the
victim's closure is pruned from the waits-for graph snapshot — a
transaction the watchdog aborts while parked in the commit-wait scan
must not linger as a phantom node for the deadlock detector.
"""

from __future__ import annotations

from repro.common.errors import DeadlineExceeded, LeaseExpired

__all__ = ["Watchdog", "ReapRecord"]


def _tid_order(tid):
    return getattr(tid, "value", 0)


class ReapRecord:
    """Containment accounting for one watchdog abort."""

    __slots__ = ("tid", "kind", "reason", "closure", "cascaded", "tick")

    def __init__(self, tid, kind, reason, closure, tick):
        self.tid = tid
        self.kind = kind  # "deadline" | "lease" | "orphan"
        self.reason = reason
        self.closure = sorted(closure, key=_tid_order)
        self.cascaded = len(closure) - 1
        self.tick = tick

    def __repr__(self):
        return (
            f"ReapRecord({self.tid!r}, {self.kind}, cascaded={self.cascaded},"
            f" tick={self.tick})"
        )


class Watchdog:
    """Scans the :class:`DeadlineTable` and aborts what has lapsed."""

    def __init__(self, manager, table, detector=None, scan_interval=16):
        self.manager = manager
        self.table = table
        self.detector = detector
        self.scan_interval = scan_interval
        self.enabled = True
        self.reaped = []  # every ReapRecord, in reap order
        self.last_graph = None  # waits-for snapshot of the last scan
        self._last_scan = manager.clock.now()
        self.stats = {
            "scans": 0,
            "deadline_aborts": 0,
            "lease_aborts": 0,
            "orphan_aborts": 0,
            "cascaded_aborts": 0,
            "stall_rescues": 0,
        }

    # -- runtime hooks ----------------------------------------------------

    def on_round(self):
        """Scheduler-round hook: tick the clock, scan when the interval
        has elapsed.  Returns the tids reaped by this call.

        When the interval elapses but nothing armed is ripe yet, the
        hook skips the full scan (and its waits-for snapshot) — reaping
        can only happen at or after :meth:`DeadlineTable.next_expiry`,
        so the skip is behaviour-preserving and keeps an idle watchdog
        off the scheduler's hot path.
        """
        now = self.manager.clock.tick()
        if now - self._last_scan < self.scan_interval:
            return []
        target = self.table.next_expiry() if self.enabled else None
        if target is None or now < target:
            self._last_scan = now
            return []
        return self.scan(now=now)

    def on_stall(self):
        """Stall hook: deterministic time travel to the next expiry.

        Returns True when the jump-and-scan reaped at least one
        transaction (the schedule may now make progress); False when
        nothing was armed or nothing lapsed — the caller should raise
        its stall diagnostics as before.
        """
        if not self.enabled:
            return False
        target = self.table.next_expiry()
        if target is None:
            return False
        self.manager.clock.advance_to(target)
        reaped = self.scan()
        if reaped:
            self.stats["stall_rescues"] += 1
            return True
        return False

    # -- the scan ---------------------------------------------------------

    def scan(self, now=None):
        """One reaping pass; returns the tids aborted by this scan."""
        if not self.enabled:
            return []
        now = self.manager.clock.now() if now is None else now
        self._last_scan = now
        self.stats["scans"] += 1
        graph = self._waits_for_snapshot()
        self.last_graph = graph

        victims = []  # (tid, kind, reason), deterministic order
        seen = set()
        for error in self.table.expired(now):
            if error.tid in seen:
                continue
            seen.add(error.tid)
            kind = "deadline" if isinstance(error, DeadlineExceeded) else "lease"
            victims.append((error.tid, kind, str(error)))

        # Orphan pass: wards whose guardian is being reaped in this very
        # scan, and who hold no live lease of their own.  (Clean guardian
        # termination released its wards via the event hook, so a ward
        # seen here really was left behind.)
        reaped_guardians = set(seen)
        for ward, guardian in sorted(
            self.table.guardians.items(), key=lambda kv: _tid_order(kv[0])
        ):
            if ward in seen or guardian not in reaped_guardians:
                continue
            if self.table.lease_live(ward, now):
                continue
            seen.add(ward)
            victims.append(
                (ward, "orphan", f"orphaned: guardian {guardian!r} reaped")
            )

        reaped = []
        for tid, kind, reason in victims:
            td = self.manager.table.maybe_get(tid)
            if td is None or td.status.is_terminated:
                self.table.forget(tid)
                continue
            closure = self.manager.dependencies.abort_closure_preview(tid)
            if not self.manager.abort(tid, reason=reason):
                self.table.forget(tid)
                continue
            record = ReapRecord(tid, kind, reason, closure, tick=now)
            self.reaped.append(record)
            self.stats[kind + "_aborts"] += 1
            self.stats["cascaded_aborts"] += record.cascaded
            # Same-step waits-for pruning: the whole abort closure left
            # the commit-wait scan; the detector must not see it again.
            if graph is not None:
                for member in closure:
                    graph.remove_node(member)
            self.table.forget(tid)
            reaped.append(tid)
        return reaped

    def abort_set(self):
        """Every tid the watchdog has ever reaped, in reap order."""
        return [record.tid for record in self.reaped]

    def _waits_for_snapshot(self):
        if self.detector is None:
            return None
        return self.detector.build_graph()
