"""Deadline and lease bookkeeping for the resilience watchdog.

The :class:`DeadlineTable` is pure bookkeeping over the deterministic
:class:`~repro.common.clock.LogicalClock` tick space — it never aborts
anything itself; the :class:`~repro.resilience.watchdog.Watchdog` reads
it during scans and does the reaping.

Three kinds of entry:

* **deadline** — an absolute tick by which the transaction must have
  terminated.  Missing it is :class:`DeadlineExceeded`.
* **lease** — a heartbeat contract: the holder must call
  :meth:`heartbeat` at least every ``duration`` ticks.  A lapsed lease
  is the signature of a crashed or wedged participant and raises
  :class:`LeaseExpired` at scan time.
* **guardianship** — delegator → delegatee edges recorded from
  ``DELEGATE`` events.  A delegatee (*ward*) whose guardian is reaped by
  the watchdog in the same scan is orphaned and reaped too, unless the
  ward holds a live lease of its own.  A guardian that terminates
  *cleanly* (commit or explicit abort) releases its wards — completed
  delegation must not strand the delegatee.

When constructed with an :class:`~repro.common.events.EventBus` the
table subscribes and maintains guardianship and cleanup automatically;
without a bus, call :meth:`guard` / :meth:`forget` manually (the
watchdog also prunes terminated tids defensively during scans).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DeadlineExceeded, LeaseExpired
from repro.common.events import EventKind

__all__ = ["DeadlineTable", "Lease"]


@dataclass
class Lease:
    """One heartbeat contract: renewed at ``last_beat``, good for ``duration``."""

    last_beat: int
    duration: int

    def expires_at(self):
        return self.last_beat + self.duration


def _tid_order(tid):
    return getattr(tid, "value", 0)


class DeadlineTable:
    """Deadlines, leases, and delegation guardianship, keyed by tid."""

    def __init__(self, clock, events=None):
        self.clock = clock
        self.deadlines = {}  # tid -> absolute expiry tick
        self.leases = {}  # tid -> Lease
        self.guardians = {}  # ward tid -> guardian tid
        self._events = events
        if events is not None:
            # Narrow subscription: the table cares about three kinds, and
            # a kind-filtered subscriber keeps every other emit (the
            # read/write/lock hot path) on the no-listener fast path.
            events.subscribe(
                self._on_event,
                kinds=(
                    EventKind.DELEGATE,
                    EventKind.COMMITTED,
                    EventKind.ABORTED,
                ),
            )

    def close(self):
        """Detach from the event bus (idempotent)."""
        if self._events is not None:
            self._events.unsubscribe(self._on_event)
            self._events = None

    # -- registration -----------------------------------------------------

    def set_deadline(self, tid, at=None, budget=None):
        """Require ``tid`` to terminate by tick ``at`` (or now+``budget``)."""
        if at is None:
            if budget is None:
                raise ValueError("set_deadline needs at= or budget=")
            at = self.clock.now() + budget
        self.deadlines[tid] = at
        return at

    def grant_lease(self, tid, duration):
        """Start a heartbeat lease for ``tid``; the first beat is now."""
        lease = Lease(last_beat=self.clock.now(), duration=duration)
        self.leases[tid] = lease
        return lease

    def heartbeat(self, tid):
        """Renew ``tid``'s lease; returns False if it holds none."""
        lease = self.leases.get(tid)
        if lease is None:
            return False
        lease.last_beat = self.clock.now()
        return True

    def guard(self, ward, guardian):
        """Record that ``guardian`` is responsible for ``ward``."""
        self.guardians[ward] = guardian

    # -- queries ----------------------------------------------------------

    def deadline_of(self, tid):
        return self.deadlines.get(tid)

    def lease_of(self, tid):
        return self.leases.get(tid)

    def lease_live(self, tid, now=None):
        """True iff ``tid`` holds a lease that has not lapsed."""
        lease = self.leases.get(tid)
        if lease is None:
            return False
        now = self.clock.now() if now is None else now
        return now < lease.expires_at()

    def guardian_of(self, ward):
        return self.guardians.get(ward)

    def wards_of(self, guardian):
        """Wards guarded by ``guardian``, in tid order."""
        return sorted(
            (w for w, g in self.guardians.items() if g == guardian),
            key=_tid_order,
        )

    def expired(self, now=None):
        """Every expiry error as of ``now``, deterministically ordered.

        A tid whose deadline *and* lease have both lapsed yields two
        errors; the watchdog dedupes victims.
        """
        now = self.clock.now() if now is None else now
        errors = []
        for tid, at in sorted(self.deadlines.items(), key=lambda kv: _tid_order(kv[0])):
            if now >= at:
                errors.append(DeadlineExceeded(tid, at, now))
        for tid, lease in sorted(self.leases.items(), key=lambda kv: _tid_order(kv[0])):
            if now >= lease.expires_at():
                errors.append(LeaseExpired(tid, lease.last_beat, lease.duration, now))
        return errors

    def next_expiry(self):
        """The earliest armed expiry tick, or ``None`` when nothing is armed.

        This is the watchdog's time-travel target when the scheduler
        stalls: jumping the logical clock here makes the earliest
        deadline/lease fire without wall-clock waiting.
        """
        ticks = list(self.deadlines.values())
        ticks.extend(lease.expires_at() for lease in self.leases.values())
        return min(ticks) if ticks else None

    # -- cleanup ----------------------------------------------------------

    def forget(self, tid):
        """Drop every entry about ``tid`` (terminated or reaped)."""
        self.deadlines.pop(tid, None)
        self.leases.pop(tid, None)
        self.guardians.pop(tid, None)

    def release_guardian(self, guardian):
        """Clean termination of ``guardian``: its wards are on their own
        (and no longer orphan candidates)."""
        if not self.guardians:
            return
        for ward in [w for w, g in self.guardians.items() if g == guardian]:
            del self.guardians[ward]

    # -- event wiring -----------------------------------------------------

    def _on_event(self, event):
        kind = event.kind
        if kind is EventKind.DELEGATE:
            ward = event.detail.get("to")
            if ward is not None:
                self.guard(ward, event.tid)
        elif kind in (EventKind.COMMITTED, EventKind.ABORTED):
            self.forget(event.tid)
            self.release_guardian(event.tid)
