"""Deterministic retry policies: bounded attempts, backoff, jitter, filters.

A :class:`RetryPolicy` wraps an operation that may fail transiently —
a commit whose log flush hit an injected device fault, a saga
compensation racing a recovering store — and re-runs it under a strict
budget.  Everything is deterministic:

* backoff delays are *logical*: when a clock is attached the policy
  advances the shared :class:`~repro.common.clock.LogicalClock` instead
  of sleeping, so chaos replays see identical tick sequences;
* jitter comes from ``random.Random`` seeded per (policy seed, attempt),
  not from wall time, so the same plan produces the same delays.

``retryable`` is an error-class filter: only exceptions that are
instances of one of those classes are absorbed; anything else
propagates immediately.  The default absorbs the
:class:`~repro.common.errors.TransientError` marker — which covers
:class:`~repro.common.errors.TransientIOError` and the network branch
(drops, timeouts, partitions) — and nothing else: retrying a
deterministic failure (an aborted transaction, a dependency cycle)
would just burn the budget.
"""

from __future__ import annotations

import random

from repro.common.errors import RetryExhausted, TransientError

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` is the *total* number of tries (1 = no retries;
    0 or less exhausts immediately without running the operation).
    The delay before attempt ``n+1`` is::

        min(max_delay, base_delay * multiplier ** (n - 1)) + jitter(n)

    with ``jitter(n)`` drawn uniformly from ``[0, jitter]`` ticks by a
    generator seeded with ``(seed << 17) ^ n``.
    """

    def __init__(
        self,
        max_attempts=3,
        base_delay=1,
        multiplier=2,
        max_delay=64,
        jitter=0,
        seed=0,
        retryable=(TransientError,),
        clock=None,
    ):
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retryable = tuple(retryable)
        self.clock = clock
        self.stats = {"runs": 0, "attempts": 0, "retries": 0, "exhausted": 0}

    @classmethod
    def zero_budget(cls, **kwargs):
        """A policy that exhausts on the first failure (no retries)."""
        kwargs.setdefault("max_attempts", 1)
        return cls(**kwargs)

    def delay_before(self, attempt):
        """Backoff delay (ticks) before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0
        backoff = self.base_delay * (self.multiplier ** (attempt - 1))
        delay = min(self.max_delay, backoff)
        if self.jitter:
            rng = random.Random((self.seed << 17) ^ attempt)
            delay += rng.randint(0, self.jitter)
        return delay

    def should_retry(self, error):
        """Is ``error`` in an absorbable class?"""
        return isinstance(error, self.retryable)

    def run(self, operation, op="operation", tid=None):
        """Call ``operation()`` under this policy.

        Returns the operation's result on success.  Raises
        :class:`RetryExhausted` when the budget runs out (carrying the
        last error), or the original exception when it is not in a
        retryable class.
        """
        self.stats["runs"] += 1
        last_error = None
        attempt = 0
        while attempt < self.max_attempts:
            attempt += 1
            self.stats["attempts"] += 1
            try:
                return operation()
            except self.retryable as exc:
                last_error = exc
                if attempt >= self.max_attempts:
                    break
                self.stats["retries"] += 1
                delay = self.delay_before(attempt)
                if delay and self.clock is not None:
                    self.clock.tick(delay)
        self.stats["exhausted"] += 1
        raise RetryExhausted(op, attempt, last_error=last_error, tid=tid)
