"""Admission control: shed new ``initiate`` calls with typed backpressure.

The paper's ``initiate`` already fails softly (null tid) when "the
number of transactions exceed a predetermined number"; under real
overload that silent null starves callers of the information they need
to back off sensibly.  The :class:`AdmissionController` sits in front
of ``initiate`` and raises :class:`~repro.common.errors.Backpressure`
— naming the gate that tripped, the measured load, and the limit —
when either:

* **active gate** — the count of non-terminated transactions reaches
  ``max_active``; or
* **deadline-pressure gate** — too many registered deadlines expire
  within the next ``pressure_window`` ticks (the system is already
  racing the watchdog; adding load now just manufactures deadline
  aborts).

Shedding at the door is the cheapest place to degrade: the request
holds no locks, no log space, no descriptor slot yet.
"""

from __future__ import annotations

from repro.common.errors import Backpressure

__all__ = ["AdmissionController"]


class AdmissionController:
    """Gatekeeper for ``initiate``; raises :class:`Backpressure` to shed."""

    def __init__(
        self,
        max_active=None,
        deadline_pressure_limit=None,
        pressure_window=32,
        deadlines=None,
        clock=None,
    ):
        self.max_active = max_active
        self.deadline_pressure_limit = deadline_pressure_limit
        self.pressure_window = pressure_window
        self.deadlines = deadlines
        self.clock = clock
        self.enabled = True
        self.stats = {
            "admitted": 0,
            "shed_active": 0,
            "shed_deadline_pressure": 0,
        }

    def active_load(self, manager):
        """Non-terminated transactions currently in the table."""
        return sum(1 for td in manager.table if not td.status.is_terminated)

    def deadline_pressure(self, now=None):
        """Registered deadlines expiring within the pressure window."""
        if self.deadlines is None:
            return 0
        if now is None:
            now = self.clock.now() if self.clock is not None else 0
        horizon = now + self.pressure_window
        return sum(1 for at in self.deadlines.deadlines.values() if at <= horizon)

    def admit(self, manager):
        """Allow one ``initiate`` through, or raise :class:`Backpressure`."""
        if not self.enabled:
            return
        if self.max_active is not None:
            load = self.active_load(manager)
            if load >= self.max_active:
                self.stats["shed_active"] += 1
                raise Backpressure("active", load, self.max_active)
        if self.deadline_pressure_limit is not None:
            pressure = self.deadline_pressure()
            if pressure >= self.deadline_pressure_limit:
                self.stats["shed_deadline_pressure"] += 1
                raise Backpressure(
                    "deadline_pressure", pressure, self.deadline_pressure_limit
                )
        self.stats["admitted"] += 1
