"""``repro.resilience`` — deadlines, watchdog aborts, retry, degradation.

The production-facing robustness layer over the ASSET primitives.  The
pieces compose but do not require each other:

* :class:`DeadlineTable` + :class:`Watchdog` — bound every transaction
  (deadlines), detect crashed participants (heartbeat leases), reap
  orphaned delegatees, all on the deterministic logical clock;
* :class:`RetryPolicy` — bounded, deterministically-jittered retries
  for transient failures, wired into sagas, contingent transactions,
  and the workflow engine;
* :class:`FlushHealth` — the FlushCoalescer's degrade/re-promote
  circuit breaker; :class:`QuarantineRegistry` — read-path poisoning
  of objects on quarantined pages;
* :class:`AdmissionController` — typed backpressure at ``initiate``.

:func:`install_resilience` wires a standard kit onto an existing
manager/runtime pair and returns the handles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.admission import AdmissionController
from repro.resilience.deadlines import DeadlineTable, Lease
from repro.resilience.degrade import (
    BATCHING,
    DEGRADED,
    FlushHealth,
    QuarantineRegistry,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.watchdog import ReapRecord, Watchdog

__all__ = [
    "AdmissionController",
    "BATCHING",
    "DEGRADED",
    "DeadlineTable",
    "FlushHealth",
    "Lease",
    "QuarantineRegistry",
    "ReapRecord",
    "ResilienceKit",
    "RetryPolicy",
    "Watchdog",
    "install_resilience",
]


@dataclass
class ResilienceKit:
    """Handles to one installed resilience stack."""

    deadlines: DeadlineTable
    watchdog: Watchdog
    health: FlushHealth = None
    quarantine: QuarantineRegistry = None
    admission: AdmissionController = None


def install_resilience(
    manager,
    runtime=None,
    *,
    scan_interval=16,
    subscribe_events=True,
    degrade_after=3,
    repromote_after=8,
    max_active=None,
    deadline_pressure_limit=None,
    pressure_window=32,
):
    """Wire the standard resilience kit onto ``manager`` (and ``runtime``).

    * a :class:`DeadlineTable` on the manager's clock (subscribed to the
      event bus for delegation guardianship unless ``subscribe_events``
      is False — subscribing makes every event tick the clock, which
      hot-path benchmarks may prefer to avoid);
    * a :class:`Watchdog` using the runtime's deadlock detector when one
      is available, attached to the runtime's round/stall hooks;
    * a :class:`FlushHealth` breaker on the log's FlushCoalescer, when
      the storage stack has one;
    * a :class:`QuarantineRegistry` on the storage manager;
    * an :class:`AdmissionController` on the manager when either gate
      limit is given.
    """
    deadlines = DeadlineTable(
        manager.clock, events=manager.events if subscribe_events else None
    )
    detector = getattr(runtime, "_detector", None)
    watchdog = Watchdog(
        manager, deadlines, detector=detector, scan_interval=scan_interval
    )
    if runtime is not None:
        runtime.watchdog = watchdog

    health = None
    quarantine = None
    storage = manager.storage
    if storage is not None:
        coalescer = getattr(storage.log, "group_commit", None)
        if coalescer is not None:
            health = FlushHealth(
                degrade_after=degrade_after, repromote_after=repromote_after
            )
            coalescer.health = health
        quarantine = QuarantineRegistry()
        storage.quarantine = quarantine

    admission = None
    if max_active is not None or deadline_pressure_limit is not None:
        admission = AdmissionController(
            max_active=max_active,
            deadline_pressure_limit=deadline_pressure_limit,
            pressure_window=pressure_window,
            deadlines=deadlines,
            clock=manager.clock,
        )
        manager.admission = admission

    return ResilienceKit(
        deadlines=deadlines,
        watchdog=watchdog,
        health=health,
        quarantine=quarantine,
        admission=admission,
    )
