"""Paper-style table rendering and machine-readable benchmark capture.

Every benchmark prints its series through these helpers so that the rows
recorded in EXPERIMENTS.md come from one consistent format.  Printing a
table also records the series in the module-level :data:`RECORDER`, and
the benchmark suite's conftest writes everything out as JSON
(``BENCH_PR<N>.json``) at session end — one row per benchmark series
plus one timing row per bench — turning the suite into a tracked perf
trajectory that future PRs diff against.
"""

from __future__ import annotations

import json


class BenchRecorder:
    """Accumulates benchmark series and per-bench timings for JSON export.

    A *series* is one printed sweep table (title, headers, data rows); a
    *timing* is one bench's wall-clock datum (seconds, and ops/sec when
    a calibrated measurement exists).  ``rows()`` flattens both into the
    one-row-per-entry shape the perf-trajectory files use.
    """

    def __init__(self):
        self.series = []
        self.timings = []

    def add_series(self, title, headers, rows):
        """Record one printed sweep table."""
        self.series.append(
            {
                "kind": "series",
                "series": title,
                "headers": list(headers),
                "rows": [list(row) for row in rows],
            }
        )

    def add_timing(self, name, wall_time_s, ops_per_sec=None):
        """Record one bench's wall time (and calibrated ops/sec)."""
        self.timings.append(
            {
                "kind": "timing",
                "bench": name,
                "wall_time_s": round(float(wall_time_s), 6),
                "ops_per_sec": (
                    round(float(ops_per_sec), 3)
                    if ops_per_sec is not None
                    else None
                ),
            }
        )

    def rows(self):
        """All recorded entries, series first, one dict per row."""
        return list(self.series) + list(self.timings)

    def write_json(self, path):
        """Write the recorded rows to ``path`` as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.rows(), handle, indent=2, default=str)
            handle.write("\n")

    def clear(self):
        """Forget everything (test isolation)."""
        self.series = []
        self.timings = []


RECORDER = BenchRecorder()
"""The process-wide recorder ``print_table`` feeds."""


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title, headers, rows):
    """Render a fixed-width table as a string."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(title, headers, rows):
    """Print a table (with a leading blank line so pytest output stays
    readable) and record the series in :data:`RECORDER`."""
    RECORDER.add_series(title, headers, rows)
    print()
    print(format_table(title, headers, rows))
