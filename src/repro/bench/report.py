"""Paper-style table rendering for benchmark output.

Every benchmark prints its series through these helpers so that the rows
recorded in EXPERIMENTS.md come from one consistent format.
"""

from __future__ import annotations


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(title, headers, rows):
    """Render a fixed-width table as a string."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(title, headers, rows):
    """Print a table (with a leading blank line so pytest output stays
    readable)."""
    print()
    print(format_table(title, headers, rows))
