"""Synthetic workload generation.

A :class:`WorkloadSpec` describes a population of read/write transactions
over a set of counter objects: how many transactions, operations per
transaction, the read/write mix, and the access skew (uniform or
Zipf-like).  Generation is fully seeded — the same spec always produces
the same operation lists — which, combined with the deterministic
runtime, makes every benchmark reproducible bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.codec import decode_int, encode_int
from repro.core.semantics import READ, WRITE


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    transactions: int = 10
    ops_per_txn: int = 4
    n_objects: int = 16
    write_ratio: float = 0.5
    zipf_theta: float = 0.0  # 0 = uniform; higher = more skew
    seed: int = 0

    def access_weights(self):
        """Per-object selection weights under the configured skew."""
        if self.zipf_theta <= 0:
            return [1.0] * self.n_objects
        return [
            1.0 / ((rank + 1) ** self.zipf_theta)
            for rank in range(self.n_objects)
        ]

    def generate(self):
        """Produce one operation list per transaction.

        Each operation is ``(op, object_index)`` with ``op`` in
        ``{read, write}``.
        """
        rng = random.Random(self.seed)
        weights = self.access_weights()
        population = list(range(self.n_objects))
        workload = []
        for __ in range(self.transactions):
            ops = []
            for __ in range(self.ops_per_txn):
                index = rng.choices(population, weights=weights, k=1)[0]
                op = WRITE if rng.random() < self.write_ratio else READ
                ops.append((op, index))
            workload.append(ops)
        return workload


def populate_objects(runtime, count, initial=0, prefix="obj"):
    """Create ``count`` integer objects; returns their ids in order."""

    def setup(tx):
        oids = []
        for index in range(count):
            oid = yield tx.create(
                encode_int(initial), name=f"{prefix}{index}"
            )
            oids.append(oid)
        return oids

    result = runtime.run(setup)
    value = result.value if hasattr(result, "value") else result[1]
    return value


def body_for(ops, oids):
    """Build a transaction body executing ``ops`` against ``oids``.

    Reads decode the counter; writes increment it (read-modify-write), so
    write/write conflicts are real data races the lock manager must
    order.
    """

    def body(tx):
        total = 0
        for op, index in ops:
            oid = oids[index]
            if op == READ:
                total += decode_int((yield tx.read(oid)))
            else:
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))
        return total

    return body


def bodies_for(spec, oids):
    """All transaction bodies for a workload spec."""
    return [body_for(ops, oids) for ops in spec.generate()]
