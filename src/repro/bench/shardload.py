"""Wall-clock shard-parallel workloads (EX14d / EX15c).

The deterministic sharded engine proves *equivalence*; this module
measures *throughput*.  Two execution models:

* **In-process** — :class:`~repro.runtime.sharded.ParallelShardedRuntime`
  drives one worker thread per shard over one shared manager.  Under
  CPython's GIL the pure-Python transaction path cannot exceed one core,
  so thread counts buy concurrency (overlap of blocking) but not
  parallel speedup; the numbers are still recorded as the honest datum
  for the single-interpreter configuration.
* **Multi-process** — each shard runs in its own forked process over its
  own partition of the key space (shared-nothing striping, the standard
  way shard parallelism escapes the GIL).  This is the configuration the
  ISSUE's ≥ 2× gate targets; on a single-core runner the harness records
  the measured speedup without enforcing the gate.

Workers are module-level functions so ``multiprocessing`` can pickle
them with the default (fork) start method.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.common.codec import decode_int, encode_int

__all__ = [
    "cpu_can_support_speedup_gate",
    "run_partition",
    "multiprocess_throughput",
    "parallel_runtime_throughput",
    "sharded_oracle_throughput",
]


def cpu_can_support_speedup_gate(required_cores=4):
    """Whether this machine can physically show shard-parallel speedup."""
    count = os.cpu_count() or 1
    return count >= required_cores


def _increment_bodies(oids, count):
    def bump(index):
        def body(tx):
            oid = oids[index % len(oids)]
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        return body

    return [bump(index) for index in range(count)]


def _drive_single_engine(n_txns, n_objects, seed):
    """One single-shard engine run; returns (commits, elapsed_seconds)."""
    from repro.runtime.sharded import ShardedRuntime

    rt = ShardedRuntime(n_shards=1, seed=seed)

    def setup(tx):
        created = []
        for index in range(n_objects):
            created.append(
                (yield tx.create(encode_int(0), name=f"p{index}"))
            )
        return created

    oids = rt.run(setup).value
    # Sequential commits: a single-thread engine's throughput datum is
    # transactions retired per second, not contention survival.
    start = time.perf_counter()
    commits = 0
    for body in _increment_bodies(oids, n_txns):
        if rt.run(body).committed:
            commits += 1
    elapsed = time.perf_counter() - start
    return commits, elapsed


def run_partition(args):
    """Module-level multiprocessing worker: one shard's partition."""
    shard_index, n_txns, n_objects, seed = args
    return _drive_single_engine(n_txns, n_objects, seed + shard_index)


def multiprocess_throughput(n_shards, txns_per_shard=64, n_objects=8, seed=11):
    """Run ``n_shards`` shared-nothing partitions in parallel processes.

    Returns ``(total_commits, wall_seconds, throughput_txn_per_s)``.
    With one shard the pool degenerates to a single worker process, so
    the 1-vs-N comparison pays identical process-spawn overhead on both
    sides and the ratio isolates the parallelism.
    """
    jobs = [
        (shard, txns_per_shard, n_objects, seed) for shard in range(n_shards)
    ]
    start = time.perf_counter()
    if n_shards == 1:
        results = [run_partition(jobs[0])]
    else:
        with multiprocessing.Pool(processes=n_shards) as pool:
            results = pool.map(run_partition, jobs)
    wall = time.perf_counter() - start
    commits = sum(committed for committed, __ in results)
    return commits, wall, commits / wall if wall else float("inf")


def parallel_runtime_throughput(n_shards, n_txns=32):
    """One shared :class:`ParallelShardedRuntime`, disjoint key batches.

    Each transaction owns its object (the shard-parallel workload shape:
    disjoint footprints, key-pinned to the owning shard), so every
    transaction commits and the wall-clock measures engine cost rather
    than deadlock-victim attrition.

    Returns ``(commits, wall_seconds, throughput_txn_per_s)``.
    """
    from repro.runtime.sharded import ParallelShardedRuntime

    rt = ParallelShardedRuntime(n_shards=n_shards, watchdog_interval=0.01)
    try:

        def setup(tx):
            created = []
            for index in range(n_txns):
                created.append(
                    (yield tx.create(encode_int(0), name=f"q{index}"))
                )
            return created

        oids = rt.run(setup).value

        def bump_for(oid):
            def body(tx):
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))

            return body

        start = time.perf_counter()
        tids = [
            rt.spawn(bump_for(oids[index]), key=f"q{index}")
            for index in range(n_txns)
        ]
        outcomes = rt.commit_all(tids)
        wall = time.perf_counter() - start
        commits = sum(outcomes.values())
        return commits, wall, commits / wall if wall else float("inf")
    finally:
        rt.close()


def sharded_oracle_throughput(n_shards, n_txns=32, n_objects=8, seed=5):
    """The deterministic sharded engine on one thread (baseline datum)."""
    from repro.runtime.sharded import ShardedRuntime

    rt = ShardedRuntime(n_shards=n_shards, seed=seed)

    def setup(tx):
        created = []
        for index in range(n_objects):
            created.append(
                (yield tx.create(encode_int(0), name=f"q{index}"))
            )
        return created

    oids = rt.run(setup).value
    start = time.perf_counter()
    commits = 0
    for body in _increment_bodies(oids, n_txns):
        if rt.run(body).committed:
            commits += 1
    wall = time.perf_counter() - start
    return commits, wall, commits / wall if wall else float("inf")
