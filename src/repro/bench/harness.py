"""The experiment harness.

Runs a batch of transaction bodies concurrently on the deterministic
runtime and collects the metrics the experiment tables report: commit and
abort counts, scheduler steps (the deterministic time unit), lock-manager
blocking/suspension counts, and per-transaction latency in logical ticks
derived from the recorded history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.events import EventKind


@dataclass
class Metrics:
    """What one harness run produced."""

    committed: int = 0
    aborted: int = 0
    steps: int = 0
    lock_blocks: int = 0
    suspensions: int = 0
    commit_blocks: int = 0
    cascaded_aborts: int = 0
    latencies: list = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def throughput(self):
        """Committed transactions per 1000 scheduler steps."""
        if self.steps == 0:
            return 0.0
        return 1000.0 * self.committed / self.steps

    @property
    def ops_per_sec(self):
        """Committed transactions per wall-clock second.

        The machine-dependent companion to :attr:`throughput` (which is
        deterministic); the JSON perf trajectory records both.
        """
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.committed / self.wall_time_s

    @property
    def mean_latency(self):
        """Mean begin→commit latency in logical ticks."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self):
        """Worst begin→commit latency in logical ticks."""
        return max(self.latencies, default=0)


def latency_stats(recorder, tids=None):
    """Begin→commit latencies (logical ticks) from a recorded history."""
    begins = {}
    latencies = []
    wanted = set(tids) if tids is not None else None
    for event in recorder.events:
        if wanted is not None and event.tid not in wanted:
            continue
        if event.kind is EventKind.BEGIN:
            begins[event.tid] = event.tick
        elif event.kind is EventKind.COMMITTED and event.tid in begins:
            latencies.append(event.tick - begins[event.tid])
    return latencies


def run_interleaved(runtime, bodies, recorder=None):
    """Run ``bodies`` concurrently under the scheduler; returns Metrics.

    All transactions are spawned, scheduled to quiescence (deadlock
    victims aborted along the way), then committed in spawn order — the
    simplest "open all, then close all" discipline, which maximizes
    concurrent lock footprints and is what the contention experiments
    want.
    """
    manager = runtime.manager
    steps_before = runtime.steps
    stats_before = dict(manager.stats)
    lock_before = dict(manager.lock_manager.stats)

    start = time.perf_counter()
    tids = [runtime.spawn(body) for body in bodies]
    runtime.run_until_quiescent()
    runtime.commit_all(tids)
    wall_time_s = time.perf_counter() - start

    metrics = Metrics(
        wall_time_s=wall_time_s,
        committed=manager.stats["committed"] - stats_before["committed"],
        aborted=manager.stats["aborted"] - stats_before["aborted"],
        steps=runtime.steps - steps_before,
        lock_blocks=manager.lock_manager.stats["blocks"]
        - lock_before["blocks"],
        suspensions=manager.lock_manager.stats["suspensions"]
        - lock_before["suspensions"],
        commit_blocks=manager.stats["commit_blocks"]
        - stats_before["commit_blocks"],
        cascaded_aborts=manager.stats["cascaded_aborts"]
        - stats_before["cascaded_aborts"],
    )
    if recorder is not None:
        metrics.latencies = latency_stats(recorder, tids=tids)
    return metrics


def run_sequential(runtime, bodies):
    """Run ``bodies`` one after another (the zero-contention baseline)."""
    manager = runtime.manager
    steps_before = runtime.steps
    committed_before = manager.stats["committed"]
    aborted_before = manager.stats["aborted"]
    start = time.perf_counter()
    for body in bodies:
        tid = runtime.spawn(body)
        runtime.commit(tid)
    return Metrics(
        committed=manager.stats["committed"] - committed_before,
        aborted=manager.stats["aborted"] - aborted_before,
        steps=runtime.steps - steps_before,
        wall_time_s=time.perf_counter() - start,
    )
