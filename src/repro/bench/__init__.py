"""Benchmark support: workload generation, harness, and reporting.

The paper carries no quantitative evaluation, so the experiments here
characterize the *implementation* the paper describes: each benchmark in
``benchmarks/`` builds a synthetic workload with :mod:`repro.bench.workload`,
runs it through the harness (:mod:`repro.bench.harness`) on the
deterministic runtime, and prints paper-style rows via
:mod:`repro.bench.report`.  EXPERIMENTS.md records the resulting shapes.
"""

from repro.bench.harness import Metrics, latency_stats, run_interleaved
from repro.bench.report import format_table, print_table
from repro.bench.workload import WorkloadSpec, populate_objects

__all__ = [
    "Metrics",
    "WorkloadSpec",
    "format_table",
    "latency_stats",
    "populate_objects",
    "print_table",
    "run_interleaved",
]
