"""Transaction programs and the request vocabulary.

A transaction body is a generator function::

    def transfer(tx, src, dst, amount):
        balance = yield tx.read(src)
        yield tx.write(src, balance - amount)
        other = yield tx.read(dst)
        yield tx.write(dst, other + amount)

``tx`` is a :class:`TxnContext`; its methods build *request* objects which
the runtime executes on the transaction's behalf, sending the result back
into the generator.  Yield points are exactly the primitive invocations,
which is what lets the cooperative runtime explore interleavings
deterministically.

:func:`execute_request` is the single shared interpreter: it maps one
request to core calls and reports either ``("done", value)`` or
``("blocked", who)`` — the runtime decides how to wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AssetError
from repro.common.ids import NULL_TID
from repro.core.outcomes import CommitStatus


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """Base class for requests a program can yield."""


@dataclass(frozen=True)
class Read(Request):
    oid: object = None


@dataclass(frozen=True)
class Write(Request):
    oid: object = None
    value: bytes = b""


@dataclass(frozen=True)
class Create(Request):
    value: bytes = b""
    name: str = ""


@dataclass(frozen=True)
class Operation(Request):
    oid: object = None
    operation: str = ""
    transform: object = None


@dataclass(frozen=True)
class Initiate(Request):
    function: object = None
    args: tuple = ()


@dataclass(frozen=True)
class Begin(Request):
    tids: tuple = ()


@dataclass(frozen=True)
class Commit(Request):
    tid: object = None


@dataclass(frozen=True)
class Wait(Request):
    tid: object = None


@dataclass(frozen=True)
class Abort(Request):
    tid: object = None


@dataclass(frozen=True)
class Delegate(Request):
    source: object = None
    target: object = None
    oids: tuple = None


@dataclass(frozen=True)
class Permit(Request):
    giver: object = None
    receiver: object = None
    oids: tuple = None
    operations: tuple = None


@dataclass(frozen=True)
class FormDependency(Request):
    dep_type: object = None
    ti: object = None
    tj: object = None


@dataclass(frozen=True)
class GetStatus(Request):
    tid: object = None


@dataclass(frozen=True)
class GetResult(Request):
    tid: object = None


@dataclass(frozen=True)
class Savepoint(Request):
    pass


@dataclass(frozen=True)
class RollbackTo(Request):
    savepoint: int = 0


# ---------------------------------------------------------------------------
# the per-transaction context
# ---------------------------------------------------------------------------


class TxnContext:
    """What a transaction body sees: request builders plus identity.

    ``tx.tid`` is the paper's ``self()``; ``tx.parent`` its ``parent()``.
    Every other method builds a request to be yielded.
    """

    def __init__(self, tid, parent=NULL_TID):
        self.tid = tid
        self.parent = parent

    # identity ----------------------------------------------------------

    def self_tid(self):
        """The paper's ``self()``."""
        return self.tid

    def parent_tid(self):
        """The paper's ``parent()`` (null tid at top level)."""
        return self.parent

    # object access -----------------------------------------------------

    def read(self, oid):
        """Request: read ``oid`` (acquiring a read lock if needed)."""
        return Read(oid=oid)

    def write(self, oid, value):
        """Request: write ``value`` to ``oid`` (write lock, logged)."""
        return Write(oid=oid, value=value)

    def create(self, value, name=""):
        """Request: create a new object; the result is its id."""
        return Create(value=value, name=name)

    def operation(self, oid, operation, transform):
        """Request: a semantic operation under an operation lock."""
        return Operation(oid=oid, operation=operation, transform=transform)

    # transaction control -------------------------------------------------

    def initiate(self, function, args=()):
        """Request: register a child transaction (result: its tid)."""
        return Initiate(function=function, args=tuple(args))

    def begin(self, *tids):
        """Request: start execution of initiated transactions."""
        return Begin(tids=tuple(tids))

    def commit(self, tid=None):
        """Request: commit ``tid`` (default: self).  Blocking."""
        return Commit(tid=tid if tid is not None else self.tid)

    def wait(self, tid):
        """Request: wait for ``tid`` to complete; result 1/0 as the paper."""
        return Wait(tid=tid)

    def abort(self, tid=None):
        """Request: abort ``tid`` (default: self)."""
        return Abort(tid=tid if tid is not None else self.tid)

    # the new primitives -----------------------------------------------------

    def delegate(self, target, oids=None, source=None):
        """Request: delegate (all or ``oids``) from ``source`` (default self)."""
        return Delegate(
            source=source if source is not None else self.tid,
            target=target,
            oids=tuple(oids) if oids is not None else None,
        )

    def permit(self, receiver=None, oids=None, operations=None, giver=None):
        """Request: any of the four ``permit`` forms (default giver: self)."""
        return Permit(
            giver=giver if giver is not None else self.tid,
            receiver=receiver,
            oids=tuple(oids) if oids is not None else None,
            operations=tuple(operations) if operations is not None else None,
        )

    def form_dependency(self, dep_type, ti, tj):
        """Request: form a dependency of ``dep_type`` between ``ti``/``tj``."""
        return FormDependency(dep_type=dep_type, ti=ti, tj=tj)

    def status_of(self, tid):
        """Request: the status of ``tid`` (a status query primitive)."""
        return GetStatus(tid=tid)

    def result_of(self, tid):
        """Request: the program return value of a completed ``tid``."""
        return GetResult(tid=tid)

    def savepoint(self):
        """Request: mark a rollback point (result: an opaque token)."""
        return Savepoint()

    def rollback_to(self, savepoint):
        """Request: undo my updates made after ``savepoint``."""
        return RollbackTo(savepoint=savepoint)


# ---------------------------------------------------------------------------
# the shared request interpreter
# ---------------------------------------------------------------------------

DONE = "done"
BLOCKED = "blocked"


def execute_request(manager, runtime, tid, request):
    """Execute one request for transaction ``tid``.

    Returns ``(DONE, value)`` or ``(BLOCKED, who)`` where ``who`` is the
    collection of tids being waited for (possibly empty when unknown).
    ``runtime`` supplies :meth:`on_begun` so freshly begun transactions
    get a task/thread.
    """
    if isinstance(request, Read):
        outcome, value = manager.try_read(tid, request.oid)
        if not outcome:
            return BLOCKED, outcome.blockers
        return DONE, value
    if isinstance(request, Write):
        outcome = manager.try_write(tid, request.oid, request.value)
        if not outcome:
            return BLOCKED, outcome.blockers
        return DONE, True
    if isinstance(request, Create):
        return DONE, manager.create_object(tid, request.value, name=request.name)
    if isinstance(request, Operation):
        outcome, result = manager.try_operation(
            tid, request.oid, request.operation, request.transform
        )
        if not outcome:
            return BLOCKED, outcome.blockers
        return DONE, result
    if isinstance(request, Initiate):
        return DONE, manager.initiate(
            function=request.function, args=request.args, initiator=tid
        )
    if isinstance(request, Begin):
        blockers = []
        for target in request.tids:
            blockers.extend(manager.begin_blockers(target))
        if blockers:
            return BLOCKED, tuple(blockers)
        ok = manager.begin(*request.tids)
        if ok:
            for target in request.tids:
                runtime.on_begun(target)
        return DONE, 1 if ok else 0
    if isinstance(request, Commit):
        outcome = manager.try_commit(request.tid)
        if outcome.is_final:
            return DONE, 1 if outcome else 0
        if outcome.status is CommitStatus.NOT_COMPLETED:
            return BLOCKED, (request.tid,)
        return BLOCKED, outcome.waiting_for
    if isinstance(request, Wait):
        result = manager.wait_outcome(request.tid)
        if result is None:
            return BLOCKED, (request.tid,)
        return DONE, 1 if result else 0
    if isinstance(request, Abort):
        return DONE, 1 if manager.abort(request.tid) else 0
    if isinstance(request, Delegate):
        oids = set(request.oids) if request.oids is not None else None
        return DONE, manager.delegate(request.source, request.target, oids=oids)
    if isinstance(request, Permit):
        return DONE, manager.permit(
            request.giver,
            tj=request.receiver,
            oids=request.oids,
            operations=request.operations,
        )
    if isinstance(request, FormDependency):
        return DONE, manager.form_dependency(
            request.dep_type, request.ti, request.tj
        )
    if isinstance(request, GetStatus):
        return DONE, manager.status_of(request.tid)
    if isinstance(request, GetResult):
        return DONE, runtime.result_of(request.tid)
    if isinstance(request, Savepoint):
        return DONE, manager.savepoint(tid)
    if isinstance(request, RollbackTo):
        return DONE, manager.rollback_to(tid, request.savepoint)
    raise AssetError(f"unknown request: {request!r}")
