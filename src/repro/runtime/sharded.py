"""The sharded execution engines (ROADMAP item 1).

Two runtimes over one :class:`~repro.core.sharded.ShardedTransactionManager`:

* :class:`ShardedRuntime` — the *deterministic* sharded engine: the
  cooperative scheduler driving the sharded manager single-threaded.
  Same seeds, same schedule controllers, same replay guarantees as
  :class:`~repro.runtime.coop.CooperativeRuntime`; every latch
  acquisition is uncontended.  This is the engine the differential
  harness replays recorded schedules on — its ACTA history must be
  byte-identical to the single-manager oracle's.

* :class:`ParallelShardedRuntime` — one worker thread per shard, each
  running the cooperative stepper over the tasks routed to it.  Tasks
  land on a shard by routing key (``spawn(..., key=...)``), or
  round-robin; children spawn onto their parent's shard.  Blocked
  workers park on a shared condition variable with a wake-generation
  token (the same lost-wakeup-free discipline as the fixed
  :class:`~repro.runtime.threaded.ThreadedRuntime`) and a daemon
  watchdog runs the deadlock detector.  Throughput engine; per-run
  interleavings are real races, so it is verified by *outcome*
  invariants, not history bytes.

The layering follows Börger–Schewe's multi-level refinement argument
(PAPERS.md): the deterministic runtime is the specification-level
machine the parallel engine refines; both share every line of primitive
semantics via the manager.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.common.ids import NULL_TID
from repro.core.deadlock import DeadlockDetector
from repro.core.sharded import ShardedTransactionManager
from repro.runtime.coop import CooperativeRuntime, RunResult

__all__ = ["ShardedRuntime", "ParallelShardedRuntime"]


class ShardedRuntime(CooperativeRuntime):
    """Deterministic cooperative scheduling over the sharded manager."""

    def __init__(
        self,
        manager=None,
        n_shards=None,
        seed=None,
        max_idle_rounds=2,
        schedule=None,
        watchdog=None,
        group_commit=None,
        injector=None,
    ):
        if manager is None:
            manager = ShardedTransactionManager(
                n_shards=n_shards,
                group_commit=group_commit,
                injector=injector,
            )
        super().__init__(
            manager=manager,
            seed=seed,
            max_idle_rounds=max_idle_rounds,
            schedule=schedule,
            watchdog=watchdog,
        )

    @property
    def n_shards(self):
        return self.manager.n_shards


class _ShardWorkerRuntime(CooperativeRuntime):
    """One shard's task container inside :class:`ParallelShardedRuntime`.

    A cooperative runtime over the *shared* manager: it owns the subset
    of tasks routed to its shard and steps them with the standard
    cooperative ``round``.  Children a task begins land here too (the
    request interpreter calls this runtime's ``on_begun``), which keeps
    a transaction tree on one worker thread — one thread drives any
    given generator, ever.
    """

    def __init__(self, parent, shard):
        super().__init__(manager=parent.manager)
        self._parent = parent
        self._shard = shard

    def on_begun(self, tid):
        self._parent._owner.setdefault(tid, self._shard)
        super().on_begun(tid)

    def result_of(self, tid):
        # Cross-shard GetResult: consult the whole engine, not just the
        # local task table.
        return self._parent.result_of(tid)


class ParallelShardedRuntime:
    """Thread-per-shard execution over the sharded manager."""

    def __init__(
        self,
        manager=None,
        n_shards=None,
        watchdog_interval=0.05,
        poll_timeout=0.5,
        watchdog=None,
        group_commit=None,
    ):
        if manager is None:
            manager = ShardedTransactionManager(
                n_shards=n_shards, group_commit=group_commit
            )
        self.manager = manager
        self.n_shards = manager.n_shards
        self._cond = threading.Condition()
        self._wake_gen = 0
        self._subs = [
            _ShardWorkerRuntime(self, index)
            for index in range(self.n_shards)
        ]
        self._inboxes = [deque() for __ in range(self.n_shards)]
        self._owner = {}  # tid -> shard index
        self._pinned = {}  # tid -> shard index chosen before begin
        self._rr = 0
        self._threads = []
        self._watchdog_thread = None
        self._watchdog_interval = watchdog_interval
        self._poll_timeout = poll_timeout
        self._closing = threading.Event()
        self._detector = DeadlockDetector(manager)
        self.watchdog = watchdog
        self.manager.events.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # wake-ups (same generation-token discipline as ThreadedRuntime)
    # ------------------------------------------------------------------

    def _on_event(self, event):
        with self._cond:
            self._wake_gen += 1
            self._cond.notify_all()

    def _wake_token(self):
        with self._cond:
            return self._wake_gen

    def _wait_a_moment(self, seen=None):
        with self._cond:
            if seen is not None and self._wake_gen != seen:
                return
            self._cond.wait(timeout=self._poll_timeout)

    # ------------------------------------------------------------------
    # worker and watchdog threads
    # ------------------------------------------------------------------

    def _ensure_threads(self):
        if not self._threads:
            for index in range(self.n_shards):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(index,),
                    name=f"asset-shard-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        if self._watchdog_thread is None or not self._watchdog_thread.is_alive():
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="asset-shard-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    def _worker_loop(self, shard):
        sub = self._subs[shard]
        inbox = self._inboxes[shard]
        while not self._closing.is_set():
            token = self._wake_token()
            moved = False
            while True:
                with self._cond:
                    if not inbox:
                        break
                    tid = inbox.popleft()
                sub.on_begun(tid)
                moved = True
            if sub.active_tasks():
                moved |= sub.round()
            if not moved:
                self._wait_a_moment(seen=token)

    def _watchdog_loop(self):
        while not self._closing.wait(self._watchdog_interval):
            # The detector reads lock-wait state that object ops mutate
            # under shard latches only; take the mutex so at least every
            # control-path structure is stable during the scan.
            with self.manager._mutex:
                self._detector.resolve_one()
            if self.watchdog is not None:
                self.watchdog.on_round()

    # ------------------------------------------------------------------
    # the paper-style driver API
    # ------------------------------------------------------------------

    def initiate(self, function, args=(), initiator=NULL_TID):
        return self.manager.initiate(
            function=function, args=args, initiator=initiator
        )

    def begin(self, *tids):
        self._ensure_threads()
        while True:
            token = self._wake_token()
            blockers = []
            for tid in tids:
                blockers.extend(self.manager.begin_blockers(tid))
            if not blockers:
                ok = self.manager.begin(*tids)
                if ok:
                    for tid in tids:
                        self.on_begun(tid)
                return 1 if ok else 0
            if any(self.manager.has_aborted(tid) for tid in tids):
                return 0
            self._wait_a_moment(seen=token)

    def commit(self, tid):
        while True:
            token = self._wake_token()
            outcome = self.manager.try_commit(tid)
            if outcome.is_final:
                return 1 if outcome else 0
            self._wait_a_moment(seen=token)

    def wait(self, tid):
        while True:
            token = self._wake_token()
            result = self.manager.wait_outcome(tid)
            if result is not None:
                return 1 if result else 0
            self._wait_a_moment(seen=token)

    def abort(self, tid):
        return 1 if self.manager.abort(tid) else 0

    def poll(self):
        """Yield briefly to the shard workers; always reports progress
        possible (the workers run on their own threads)."""
        self._wait_a_moment()
        return True

    def commit_all(self, tids):
        """Commit a batch in completion order, returning {tid: 0/1}."""
        outcomes = {}
        pending = list(tids)
        while pending:
            token = self._wake_token()
            progressed = False
            for tid in list(pending):
                outcome = self.manager.try_commit(tid)
                if outcome.is_final:
                    outcomes[tid] = 1 if outcome else 0
                    pending.remove(tid)
                    progressed = True
            if pending and not progressed:
                self._wait_a_moment(seen=token)
        return outcomes

    def run(self, function, args=(), key=None):
        tid = self.spawn(function, args=args, key=key)
        if not tid:
            return RunResult(tid=tid, committed=False)
        committed = self.commit(tid)
        return RunResult(
            tid=tid, committed=bool(committed), value=self.result_of(tid)
        )

    def spawn(self, function, args=(), initiator=NULL_TID, key=None):
        """``initiate`` + ``begin``; ``key`` routes to a specific shard
        (the object-key hash routing of ISSUE 7), otherwise round-robin.
        """
        tid = self.initiate(function, args=args, initiator=initiator)
        if tid:
            if key is not None:
                self._pinned[tid] = self.manager.router.shard_for_key(key)
            self.begin(tid)
        return tid

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------

    def on_begun(self, tid):
        """Route a begun transaction to its shard's worker inbox."""
        if tid in self._owner:
            return
        td = self.manager.table.get(tid)
        if td.function is None:
            self.manager.note_completed(tid)
            return
        shard = self._pinned.pop(tid, None)
        if shard is None:
            shard = self._rr % self.n_shards
            self._rr += 1
        self._owner[tid] = shard
        with self._cond:
            self._inboxes[shard].append(tid)
            self._wake_gen += 1
            self._cond.notify_all()

    def result_of(self, tid):
        shard = self._owner.get(tid)
        if shard is None:
            return None
        # Bypass the sub-runtime's parent-consulting override.
        return CooperativeRuntime.result_of(self._subs[shard], tid)

    def error_of(self, tid):
        shard = self._owner.get(tid)
        if shard is None:
            return None
        return CooperativeRuntime.error_of(self._subs[shard], tid)

    def active_tasks(self):
        return [
            tid for sub in self._subs for tid in sub.active_tasks()
        ] + [tid for inbox in self._inboxes for tid in inbox]

    def join_all(self, timeout=10.0):
        """Wait until every routed task has finished (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.active_tasks():
                return True
            token = self._wake_token()
            self._wait_a_moment(seen=token)
        return not self.active_tasks()

    def close(self):
        self._closing.set()
        with self._cond:
            self._wake_gen += 1
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(timeout=1.0)
