"""Runtimes: executing transaction programs over the synchronous core.

Transaction bodies are written once, as generator functions that yield
*requests* (:mod:`repro.runtime.program`), and run on either runtime:

* :class:`~repro.runtime.coop.CooperativeRuntime` — a deterministic
  scheduler that interleaves programs step by step (round-robin or
  seeded-random), used by tests, benchmarks, and the property suite for
  reproducible concurrency;
* :class:`~repro.runtime.threaded.ThreadedRuntime` — a thread per
  transaction with real blocking, the "live" configuration;
* :class:`~repro.runtime.sharded.ShardedRuntime` — the deterministic
  sharded engine (striped control structures, segmented WAL), the
  differential-replay peer of the cooperative oracle;
* :class:`~repro.runtime.sharded.ParallelShardedRuntime` — a worker
  thread per shard over the same sharded manager, the throughput
  configuration.

Both translate the paper's "blocks and retries later starting at step 1"
into their own waiting discipline around the same core outcomes, so a
program's semantics do not depend on the runtime that executes it.
"""

from repro.runtime.coop import (
    CooperativeRuntime,
    SchedulerStalledError,
    StalledTask,
)
from repro.runtime.program import TxnContext
from repro.runtime.sharded import ParallelShardedRuntime, ShardedRuntime
from repro.runtime.threaded import ThreadedRuntime

__all__ = [
    "CooperativeRuntime",
    "ParallelShardedRuntime",
    "SchedulerStalledError",
    "ShardedRuntime",
    "StalledTask",
    "ThreadedRuntime",
    "TxnContext",
]
