"""Runtimes: executing transaction programs over the synchronous core.

Transaction bodies are written once, as generator functions that yield
*requests* (:mod:`repro.runtime.program`), and run on either runtime:

* :class:`~repro.runtime.coop.CooperativeRuntime` — a deterministic
  scheduler that interleaves programs step by step (round-robin or
  seeded-random), used by tests, benchmarks, and the property suite for
  reproducible concurrency;
* :class:`~repro.runtime.threaded.ThreadedRuntime` — a thread per
  transaction with real blocking, the "live" configuration.

Both translate the paper's "blocks and retries later starting at step 1"
into their own waiting discipline around the same core outcomes, so a
program's semantics do not depend on the runtime that executes it.
"""

from repro.runtime.coop import (
    CooperativeRuntime,
    SchedulerStalledError,
    StalledTask,
)
from repro.runtime.program import TxnContext
from repro.runtime.threaded import ThreadedRuntime

__all__ = [
    "CooperativeRuntime",
    "SchedulerStalledError",
    "StalledTask",
    "ThreadedRuntime",
    "TxnContext",
]
