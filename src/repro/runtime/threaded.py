"""The threaded runtime: a thread per transaction, real blocking.

Each begun transaction gets a worker thread that advances its program and
executes requests against the shared :class:`TransactionManager`.  Blocked
requests wait on a condition variable that is notified whenever the
manager emits any event (every state change emits one), then retry from
step 1 — the paper's blocking discipline with notifications instead of
spinning.

A daemon watchdog periodically runs the deadlock detector and aborts a
victim, mirroring what a lock-timeout or detector thread does in a real
transaction manager.
"""

from __future__ import annotations

import threading

from repro.common.errors import TransactionAborted
from repro.common.ids import NULL_TID
from repro.core.deadlock import DeadlockDetector
from repro.core.manager import TransactionManager
from repro.runtime.program import BLOCKED, TxnContext, execute_request


class ThreadedRuntime:
    """Thread-per-transaction execution over the shared core."""

    def __init__(self, manager=None, watchdog_interval=0.05, poll_timeout=0.05,
                 watchdog=None):
        self.manager = manager if manager is not None else TransactionManager()
        self._cond = threading.Condition()
        # Wake generation: bumped under the condition on every manager
        # event.  Waiters capture the generation BEFORE testing their
        # predicate and pass it to _wait_a_moment; a notify that lands
        # between the failed test and the wait is then seen as a changed
        # generation instead of being lost (the lost-wakeup race that
        # made blocked workers sleep the full poll timeout).
        self._wake_gen = 0
        self._threads = {}
        self._results = {}
        self._errors = {}
        self._poll_timeout = poll_timeout
        self._watchdog_interval = watchdog_interval
        self._watchdog = None
        self._closing = threading.Event()
        self._detector = DeadlockDetector(self.manager)
        # Resilience watchdog (repro.resilience.Watchdog): driven from
        # the same daemon loop as the deadlock detector, so deadline and
        # lease expiries are enforced for threaded transactions too (the
        # logical clock still only moves on ticks, so scans stay
        # deterministic with respect to the event stream).
        self.watchdog = watchdog
        # Every manager event may unblock someone: wake all waiters.
        self.manager.events.subscribe(self._on_event)

    def _on_event(self, event):
        with self._cond:
            self._wake_gen += 1
            self._cond.notify_all()

    def _wake_token(self):
        """The current wake generation; capture before testing a predicate."""
        with self._cond:
            return self._wake_gen

    def _wait_a_moment(self, seen=None):
        """Wait for the next wake-up (or the poll timeout).

        ``seen`` is the generation captured before the caller last tested
        its predicate; if events have fired since, return immediately —
        the predicate may already hold and waiting would only add a poll
        timeout of dead air.  The timeout stays as a backstop for state
        changes that emit no event.
        """
        with self._cond:
            if seen is not None and self._wake_gen != seen:
                return
            self._cond.wait(timeout=self._poll_timeout)

    def _ensure_watchdog(self):
        if self._watchdog is None or not self._watchdog.is_alive():
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, daemon=True,
                name="asset-deadlock-watchdog",
            )
            self._watchdog.start()

    def _watchdog_loop(self):
        while not self._closing.wait(self._watchdog_interval):
            self._detector.resolve_one()
            if self.watchdog is not None:
                self.watchdog.on_round()

    # ------------------------------------------------------------------
    # the paper-style driver API
    # ------------------------------------------------------------------

    def initiate(self, function, args=(), initiator=NULL_TID):
        """Register a transaction that will execute ``function``."""
        return self.manager.initiate(
            function=function, args=args, initiator=initiator
        )

    def begin(self, *tids):
        """Start initiated transactions, blocking on begin dependencies."""
        self._ensure_watchdog()
        while True:
            token = self._wake_token()
            blockers = []
            for tid in tids:
                blockers.extend(self.manager.begin_blockers(tid))
            if not blockers:
                ok = self.manager.begin(*tids)
                if ok:
                    for tid in tids:
                        self.on_begun(tid)
                return 1 if ok else 0
            if any(self.manager.has_aborted(tid) for tid in tids):
                return 0
            self._wait_a_moment(seen=token)

    def commit(self, tid):
        """Commit ``tid``, blocking until the outcome is final."""
        while True:
            token = self._wake_token()
            outcome = self.manager.try_commit(tid)
            if outcome.is_final:
                return 1 if outcome else 0
            self._wait_a_moment(seen=token)

    def wait(self, tid):
        """Block until ``tid`` completes (1) or aborts (0)."""
        while True:
            token = self._wake_token()
            result = self.manager.wait_outcome(tid)
            if result is not None:
                return 1 if result else 0
            self._wait_a_moment(seen=token)

    def abort(self, tid):
        """Abort ``tid``; 1 on success, 0 if already committed."""
        return 1 if self.manager.abort(tid) else 0

    def commit_all(self, tids):
        """Commit a batch in *completion order*, returning {tid: 0/1}.

        Avoids the driver-order deadlock of committing a fixed list while
        earlier members are lock-blocked behind later, uncommitted ones.
        """
        outcomes = {}
        pending = list(tids)
        while pending:
            token = self._wake_token()
            progressed = False
            for tid in list(pending):
                outcome = self.manager.try_commit(tid)
                if outcome.is_final:
                    outcomes[tid] = 1 if outcome else 0
                    pending.remove(tid)
                    progressed = True
            if pending and not progressed:
                self._wait_a_moment(seen=token)
        return outcomes

    def poll(self):
        """Yield briefly to worker threads; always reports progress
        possible (the threads run on their own)."""
        self._wait_a_moment()
        return True

    def run(self, function, args=()):
        """``initiate`` + ``begin`` + ``commit``; returns (committed, value)."""
        tid = self.initiate(function, args=args)
        if not tid:
            return False, None
        self.begin(tid)
        committed = self.commit(tid)
        self.join_all()
        return bool(committed), self._results.get(tid)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    def on_begun(self, tid):
        """Spawn the worker thread for a transaction that just began."""
        if tid in self._threads:
            return
        td = self.manager.table.get(tid)
        if td.function is None:
            self.manager.note_completed(tid)
            return
        thread = threading.Thread(
            target=self._worker, args=(tid, td),
            name=f"asset-txn-{tid.value}", daemon=True,
        )
        self._threads[tid] = thread
        thread.start()

    def _worker(self, tid, td):
        ctx = TxnContext(tid, parent=td.parent)
        gen = td.function(ctx, *td.args)
        to_send = None
        try:
            while True:
                if self.manager.has_aborted(tid):
                    gen.throw(TransactionAborted(tid))
                    return
                try:
                    request = gen.send(to_send)
                except StopIteration as stop:
                    self._results[tid] = stop.value
                    self.manager.note_completed(tid)
                    return
                while True:
                    token = self._wake_token()
                    state, value = execute_request(
                        self.manager, self, tid, request
                    )
                    if state is not BLOCKED:
                        break
                    if self.manager.has_aborted(tid):
                        gen.throw(TransactionAborted(tid))
                        return
                    self._wait_a_moment(seen=token)
                to_send = value
                if self.manager.has_aborted(tid):
                    # abort(self()) ends the program here.
                    gen.close()
                    return
        except (StopIteration, TransactionAborted):
            pass
        except Exception as exc:
            self._errors[tid] = exc
            self.manager.abort(tid, reason=f"program raised {exc!r}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def result_of(self, tid):
        """The return value of ``tid``'s program (None if none)."""
        return self._results.get(tid)

    def error_of(self, tid):
        """The exception that aborted ``tid``'s program, if any."""
        return self._errors.get(tid)

    def join_all(self, timeout=10.0):
        """Wait for all worker threads to finish."""
        for thread in list(self._threads.values()):
            thread.join(timeout=timeout)

    def close(self):
        """Stop the watchdog and join workers."""
        self._closing.set()
        self.join_all()
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
