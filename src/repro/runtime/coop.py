"""The deterministic cooperative runtime.

Transactions run as generator tasks; the scheduler interleaves them one
request at a time, either round-robin or in a seeded-random order.  The
same seed always yields the same interleaving, which is what the property
tests and benchmarks need from a concurrency substrate (the paper ran on
OS processes; determinism is this reproduction's substitute for wall-clock
racing — see DESIGN.md).

Blocked requests are retried every round, "starting at step 1" as the
section 4.2 algorithms specify.  When a full round makes no progress the
runtime asks the deadlock detector for a victim; a stall with no deadlock
cycle raises :class:`SchedulerStalledError` — in a correct program that
means a dependency that can never resolve, which is a bug worth surfacing
loudly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import (
    QuarantinedObjectError,
    SchedulerStalledError,
    TransactionAborted,
)
from repro.common.ids import NULL_TID
from repro.core.deadlock import DeadlockDetector
from repro.core.manager import TransactionManager
from repro.runtime.program import BLOCKED, TxnContext, execute_request

# SchedulerStalledError lives in the unified taxonomy now
# (repro.common.errors) but remains importable from here, where its
# diagnostic rows (StalledTask) are built.
__all__ = [
    "CooperativeRuntime",
    "RunResult",
    "SchedulerStalledError",
    "StalledTask",
]


@dataclass
class StalledTask:
    """Diagnostic row for one stuck task inside a scheduler stall."""

    tid: object
    status: str
    pending: object = None  # the request parked at a WOULD_BLOCK point
    blocked_on: tuple = ()  # tids the last blocked attempt named

    def describe(self):
        waiting = (
            ", ".join(repr(t) for t in self.blocked_on)
            if self.blocked_on
            else "nothing reported"
        )
        pending = repr(self.pending) if self.pending is not None else "no request"
        return (
            f"{self.tid!r} [{self.status}]: pending {pending};"
            f" blocks on {waiting}"
        )


@dataclass
class RunResult:
    """Outcome of a top-level :meth:`CooperativeRuntime.run` call."""

    tid: object
    committed: bool
    value: object = None

    def __bool__(self):
        return self.committed


class _Task:
    """One running transaction program."""

    __slots__ = ("tid", "gen", "pending", "to_send", "finished", "result",
                 "error", "abort_delivered", "blocked_on")

    def __init__(self, tid, gen):
        self.tid = tid
        self.gen = gen
        self.pending = None  # request awaiting retry
        self.to_send = None  # result to send into the generator
        self.finished = False
        self.result = None
        self.error = None
        self.abort_delivered = False
        self.blocked_on = ()  # who the last WOULD_BLOCK outcome named


class CooperativeRuntime:
    """Deterministic scheduler over a :class:`TransactionManager`."""

    def __init__(self, manager=None, seed=None, max_idle_rounds=2,
                 schedule=None, watchdog=None):
        self.manager = manager if manager is not None else TransactionManager()
        self._tasks = {}
        self._order = []  # tids in spawn order (round-robin basis)
        self._rng = random.Random(seed) if seed is not None else None
        self._max_idle_rounds = max_idle_rounds
        # An explicit schedule controller (repro.chaos.explorer) decides
        # the task order at every round — and records what it decided, so
        # any interleaving replays exactly.  It overrides the seeded rng.
        self.schedule = schedule
        self._detector = DeadlockDetector(self.manager)
        # Resilience watchdog (repro.resilience): ticked every round,
        # offered one time-travel rescue before a stall raises.
        self.watchdog = watchdog
        self.steps = 0

    # ------------------------------------------------------------------
    # the paper-style driver API
    # ------------------------------------------------------------------

    def initiate(self, function, args=(), initiator=NULL_TID):
        """Register a transaction that will execute ``function``."""
        return self.manager.initiate(
            function=function, args=args, initiator=initiator
        )

    def begin(self, *tids):
        """Start initiated transactions, driving the scheduler while their
        begin dependencies are unresolved.  Returns 1 or 0."""
        while True:
            blockers = []
            for tid in tids:
                blockers.extend(self.manager.begin_blockers(tid))
            if not blockers:
                ok = self.manager.begin(*tids)
                if ok:
                    for tid in tids:
                        self.on_begun(tid)
                return 1 if ok else 0
            self._make_progress_or_die(f"begin of {tids!r}")

    def commit(self, tid):
        """Commit ``tid``: block (by scheduling others) until final."""
        while True:
            outcome = self.manager.try_commit(tid)
            if outcome.is_final:
                return 1 if outcome else 0
            self._make_progress_or_die(f"commit of {tid!r}")

    def wait(self, tid):
        """The paper's ``wait``: 1 once completed, 0 if aborted."""
        while True:
            result = self.manager.wait_outcome(tid)
            if result is not None:
                return 1 if result else 0
            self._make_progress_or_die(f"wait for {tid!r}")

    def abort(self, tid):
        """Abort ``tid``; 1 on success, 0 if already committed."""
        return 1 if self.manager.abort(tid) else 0

    def commit_all(self, tids):
        """Commit a batch in *completion order*, returning {tid: 0/1}.

        Committing a fixed list in spawn order can wait forever on a
        transaction blocked behind a later, uncommitted one; draining
        completions avoids that driver-order deadlock.
        """
        outcomes = {}
        pending = list(tids)
        while pending:
            progressed = False
            for tid in list(pending):
                outcome = self.manager.try_commit(tid)
                if outcome.is_final:
                    outcomes[tid] = 1 if outcome else 0
                    pending.remove(tid)
                    progressed = True
            if pending and not progressed:
                self._make_progress_or_die(f"commit_all of {pending!r}")
        return outcomes

    def run(self, function, args=()):
        """The standard transaction skeleton of section 3.1.1.

        ``initiate``, ``begin``, ``commit`` — and return a
        :class:`RunResult` with the program's return value.
        """
        tid = self.initiate(function, args=args)
        if not tid:
            return RunResult(tid=tid, committed=False)
        self.begin(tid)
        committed = self.commit(tid)
        return RunResult(
            tid=tid, committed=bool(committed), value=self.result_of(tid)
        )

    def spawn(self, function, args=(), initiator=NULL_TID):
        """``initiate`` + ``begin`` without committing; returns the tid."""
        tid = self.initiate(function, args=args, initiator=initiator)
        if tid:
            self.begin(tid)
        return tid

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------

    def on_begun(self, tid):
        """Create the task for a transaction that just began."""
        if tid in self._tasks:
            return
        td = self.manager.table.get(tid)
        if td.function is None:
            # A transaction with no program (driver-managed); no task.
            self.manager.note_completed(tid)
            return
        ctx = TxnContext(tid, parent=td.parent)
        gen = td.function(ctx, *td.args)
        self._tasks[tid] = _Task(tid, gen)
        self._order.append(tid)

    def result_of(self, tid):
        """The return value of ``tid``'s program (None if none)."""
        task = self._tasks.get(tid)
        return task.result if task is not None else None

    def error_of(self, tid):
        """The exception that aborted ``tid``'s program, if any."""
        task = self._tasks.get(tid)
        return task.error if task is not None else None

    def active_tasks(self):
        """Tids of tasks that have not finished."""
        return [t for t in self._order if not self._tasks[t].finished]

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------

    def _runnable(self):
        return [self._tasks[t] for t in self._order
                if not self._tasks[t].finished]

    def round(self):
        """Give every unfinished task one step; return whether any moved.

        The order of the steps within the round is the interleaving
        decision: schedule controller first (recorded, replayable), then
        the seeded rng, then plain spawn-order round-robin.
        """
        if self.watchdog is not None:
            self.watchdog.on_round()
        tasks = self._runnable()
        if self.schedule is not None and tasks:
            order = {tid: i for i, tid in
                     enumerate(self.schedule.arrange([t.tid for t in tasks]))}
            tasks.sort(key=lambda task: order[task.tid])
        elif self._rng is not None:
            self._rng.shuffle(tasks)
        progress = False
        for task in tasks:
            progress |= self._step(task)
        return progress

    def poll(self):
        """Let the system advance briefly; ``True`` if anything moved.

        Used by pollers (the workflow engine's race) that wait on a
        condition no single ``wait`` call expresses.
        """
        if self.round():
            return True
        if self._detector.resolve_one() is not None:
            return True
        return self._watchdog_rescue()

    def run_until_quiescent(self):
        """Schedule until no task can move (deadlocks get resolved)."""
        while True:
            if not self.round():
                if self._detector.resolve_one() is None:
                    if self._watchdog_rescue():
                        continue
                    return

    def _watchdog_rescue(self):
        """One shot of watchdog time travel when the schedule is wedged."""
        if self.watchdog is None:
            return False
        return self.watchdog.on_stall()

    def _make_progress_or_die(self, why):
        if self.round():
            return
        if self._detector.resolve_one() is not None:
            return
        idle = 0
        while idle < self._max_idle_rounds:
            if self.round() or self._detector.resolve_one() is not None:
                return
            idle += 1
        if self._watchdog_rescue():
            return
        raise SchedulerStalledError(why, stalled=self.stall_report())

    def stall_report(self):
        """Diagnostic rows for every unfinished task (who blocks on what)."""
        rows = []
        for tid in self.active_tasks():
            task = self._tasks[tid]
            td = self.manager.table.maybe_get(tid)
            status = td.status.value if td is not None else "unknown"
            rows.append(
                StalledTask(
                    tid=tid,
                    status=status,
                    pending=task.pending,
                    blocked_on=tuple(task.blocked_on),
                )
            )
        return rows

    def _step(self, task):
        """Advance one task by (at most) one request.  True on progress."""
        self.steps += 1
        manager = self.manager

        # Deliver an externally caused abort into the program once.
        if (
            not task.finished
            and not task.abort_delivered
            and manager.has_aborted(task.tid)
        ):
            task.abort_delivered = True
            task.pending = None
            try:
                task.gen.throw(TransactionAborted(task.tid))
            except (StopIteration, TransactionAborted):
                pass
            except Exception as exc:  # program mishandled the signal
                task.error = exc
            task.finished = True
            return True

        if task.pending is not None:
            try:
                state, value = execute_request(
                    manager, self, task.tid, task.pending
                )
            except QuarantinedObjectError as exc:
                return self._poisoned(task, exc)
            if state is BLOCKED:
                task.blocked_on = tuple(value) if value else ()
                return False
            task.pending = None
            task.to_send = value
            task.blocked_on = ()
            return True

        # Advance the generator to its next request.
        try:
            request = task.gen.send(task.to_send)
            task.to_send = None
        except StopIteration as stop:
            task.result = stop.value
            task.finished = True
            manager.note_completed(task.tid)
            return True
        except TransactionAborted:
            task.finished = True
            return True
        except Exception as exc:
            task.error = exc
            task.finished = True
            manager.abort(task.tid, reason=f"program raised {exc!r}")
            return True

        try:
            state, value = execute_request(manager, self, task.tid, request)
        except QuarantinedObjectError as exc:
            return self._poisoned(task, exc)
        if state is BLOCKED:
            task.pending = request
            task.blocked_on = tuple(value) if value else ()
        else:
            task.to_send = value
            task.blocked_on = ()
        # Aborting oneself ends the program: nothing after the abort of
        # self should run (the paper's abort(self()) idiom).
        if manager.has_aborted(task.tid) and not task.finished:
            task.pending = None
            task.finished = True
            task.gen.close()
        return True

    def _poisoned(self, task, exc):
        """A quarantined-object touch poisons the transaction: fail the
        task and abort it rather than propagate garbage (or crash the
        scheduler loop)."""
        task.error = exc
        task.pending = None
        task.finished = True
        self.manager.abort(task.tid, reason=f"poisoned: {exc}")
        task.gen.close()
        return True
