"""Metric instruments over the deterministic clock.

Three instrument families, all deliberately boring:

* :class:`Counter` — a monotonically increasing count (events, messages,
  aborts);
* :class:`Gauge` — a point-in-time value someone sets (watchdog stats,
  queue depths);
* :class:`Histogram` — fixed-bucket distributions (latencies in logical
  ticks, batch sizes in commits or bytes).  Buckets are fixed at
  creation so two snapshots of the same registry are always
  field-by-field comparable — the property the EX19 A/B bench and the
  CI overhead gate rely on.

The :class:`MetricsRegistry` keys instruments by ``(name, labels)``;
labels are sorted key/value pairs with deliberately tiny cardinality
(site names, event kinds, fault actions).  Time never comes from the
wall clock: histograms of "latency" are distances between logical-clock
ticks, so a metrics snapshot is as deterministic as the run that
produced it.

None of the instruments lock.  The cooperative runtime is single
threaded; under the threaded runtime every instrumented site already
sits behind the manager's mutex, and a metrics race could at worst lose
a count — never corrupt transaction state.
"""

from __future__ import annotations

import json
import threading

__all__ = [
    "Counter",
    "DEFAULT_TICK_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedMetrics",
]

# Powers of two up to 4096 logical ticks: primitive latencies sit in the
# low buckets, whole-transaction lifetimes and cross-site round trips in
# the high ones.  The terminal +inf bucket is implicit.
DEFAULT_TICK_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (default 1); counters never go down."""
        self.value += amount


class Gauge:
    """A point-in-time value; the last ``set`` wins."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        """Record the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket distribution with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything beyond the last bound.  ``observe`` is a linear
    probe over a dozen bounds — cheap, branch-predictable, and
    allocation-free, which is what the hot path needs.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets=DEFAULT_TICK_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        """Fold one observation into the distribution."""
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self):
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        """The snapshot shape: counts per bucket plus the summary stats."""
        labels = [f"le={bound}" for bound in self.buckets] + ["le=+inf"]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean(), 3),
            "buckets": dict(zip(labels, self.counts)),
        }


def _key(name, labels):
    return (name, tuple(sorted(labels.items()))) if labels else (name, ())


def _render_key(key):
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Named counters, gauges, and histograms with tiny label sets.

    ``clock`` (a :class:`~repro.common.clock.LogicalClock`) is optional;
    when present, snapshots carry the tick they were taken at.
    Collectors registered with :meth:`add_collector` run at snapshot
    time — the pull-model escape hatch for subsystems that already keep
    their own counters (watchdog stats, fabric stats) and should not pay
    a push on their hot path.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._collectors = []
        # Guards instrument *creation* only; updates are lock-free.
        self._lock = threading.Lock()

    # -- instrument access -------------------------------------------------

    def counter(self, name, **labels):
        """The counter registered under ``name`` (+ labels), creating it
        on first use."""
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name, **labels):
        """The gauge registered under ``name`` (+ labels)."""
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name, buckets=DEFAULT_TICK_BUCKETS, **labels):
        """The histogram registered under ``name`` (+ labels).

        The bucket bounds are fixed by the *first* registration; later
        callers inherit them, so one metric name always has one shape.
        """
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(buckets)
                )
        return instrument

    # -- push conveniences (what the wiring calls) -------------------------

    def inc(self, name, amount=1, **labels):
        """Increment the named counter."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name, value, **labels):
        """Set the named gauge."""
        self.gauge(name, **labels).set(value)

    def observe(self, name, value, buckets=DEFAULT_TICK_BUCKETS, **labels):
        """Fold one observation into the named histogram."""
        self.histogram(name, buckets=buckets, **labels).observe(value)

    def add_collector(self, collect):
        """Register ``collect(registry)`` to run at snapshot time."""
        self._collectors.append(collect)
        return collect

    # -- export ------------------------------------------------------------

    def snapshot(self):
        """One JSON-able dict of everything: run collectors, then dump.

        Keys are rendered ``name{label=value,...}`` strings, so the
        snapshot diffs cleanly and needs no schema to read.
        """
        for collect in self._collectors:
            collect(self)
        out = {
            "tick": self.clock.now() if self.clock is not None else None,
            "counters": {
                _render_key(key): counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(key): gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(key): histogram.to_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }
        return out

    def render_text(self):
        """A human-readable dump (benchmarks print this)."""
        snap = self.snapshot()
        lines = []
        if snap["tick"] is not None:
            lines.append(f"# snapshot at tick {snap['tick']}")
        for name, value in snap["counters"].items():
            lines.append(f"{name} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} {value}")
        for name, hist in snap["histograms"].items():
            lines.append(
                f"{name} count={hist['count']} sum={hist['sum']}"
                f" min={hist['min']} max={hist['max']} mean={hist['mean']}"
            )
        return "\n".join(lines)

    def to_json(self, indent=2):
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class ScopedMetrics:
    """A registry view that stamps fixed labels on every update.

    Each per-site manager gets one of these (``site=<name>``), so a
    cluster's registry separates alpha's commit latency from beta's
    while the manager-side hook stays a single attribute check.
    """

    __slots__ = ("registry", "labels")

    def __init__(self, registry, **labels):
        self.registry = registry
        self.labels = labels

    def counter(self, name, **labels):
        """The underlying counter, scope labels applied (pre-binding the
        instrument lets hot subscribers skip the per-event name lookup)."""
        return self.registry.counter(name, **{**self.labels, **labels})

    def gauge(self, name, **labels):
        """The underlying gauge, scope labels applied."""
        return self.registry.gauge(name, **{**self.labels, **labels})

    def histogram(self, name, buckets=DEFAULT_TICK_BUCKETS, **labels):
        """The underlying histogram, scope labels applied."""
        return self.registry.histogram(
            name, buckets=buckets, **{**self.labels, **labels}
        )

    def inc(self, name, amount=1, **labels):
        """Increment a counter under the scope's labels."""
        self.registry.inc(name, amount, **{**self.labels, **labels})

    def set_gauge(self, name, value, **labels):
        """Set a gauge under the scope's labels."""
        self.registry.set_gauge(name, value, **{**self.labels, **labels})

    def observe(self, name, value, buckets=DEFAULT_TICK_BUCKETS, **labels):
        """Observe into a histogram under the scope's labels."""
        self.registry.observe(
            name, value, buckets=buckets, **{**self.labels, **labels}
        )
