"""Wiring: narrow-kind subscriptions onto the existing buses and hooks.

The observability layer never sits *in* a code path; it hangs off the
seams the earlier PRs already cut:

* the manager's :class:`~repro.common.events.EventBus` (narrow-kind
  subscriptions, so unwatched hot-path kinds — READ/WRITE — still cost
  one set-membership test);
* the optional ``metrics`` attributes on
  :class:`~repro.core.manager.TransactionManager`,
  :class:`~repro.storage.log.WriteAheadLog`, and
  :class:`~repro.net.fabric.NetworkFabric` (a single ``is None`` check
  when detached);
* pull collectors over subsystems that keep their own counters (the
  resilience watchdog's containment stats, the fabric's delivery
  stats).

:func:`install_observability` builds an :class:`ObservabilityKit` and
attaches it to whatever it is given; the kit is also what the replay
CLI's ``--metrics-out`` / ``--trace-out`` flags instantiate.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.common.events import EventKind
from repro.obs.metrics import MetricsRegistry, ScopedMetrics
from repro.obs.spans import SpanBuilder

__all__ = ["EventMetrics", "ObservabilityKit", "install_observability"]


class EventMetrics:
    """The event-bus half of the metric set: a narrow-kind subscriber.

    Folds the manager's lifecycle events into counters and tick
    histograms: initiate→begin admission latency, commit/abort
    request→terminal latency, whole-transaction lifetimes, lock-blocked
    time (``LOCK_BLOCKED`` until the matching grant), and per-primitive
    invocation counts.  Latencies are logical-tick distances — exactly
    as deterministic as the run.
    """

    KINDS = (
        EventKind.INITIATE,
        EventKind.BEGIN,
        EventKind.LOCK_BLOCKED,
        EventKind.DELEGATE,
        EventKind.PERMIT,
        EventKind.FORM_DEPENDENCY,
        EventKind.COMMIT_REQUESTED,
        EventKind.COMMIT_BLOCKED,
        EventKind.COMMITTED,
        EventKind.ABORT_REQUESTED,
        EventKind.ABORTED,
        EventKind.PREPARED,
        EventKind.DEADLOCK_VICTIM,
    )

    # Lock *grants* fire on every successful read/write — the single
    # hottest event pair.  They only matter while some transaction is
    # blocked (to close a LOCK_BLOCKED interval), so instead of keeping
    # them in KINDS we subscribe a dedicated watcher for just these two
    # kinds on the first block and drop it when the last block clears.
    # While no watcher is live, the bus treats grants as unwatched and
    # ``emit`` early-returns before building the Event.
    GRANT_KINDS = (EventKind.READ_LOCK, EventKind.WRITE_LOCK)

    def __init__(self, metrics, bus=None):
        self.metrics = metrics  # a MetricsRegistry or ScopedMetrics
        self.bus = bus  # needed only for the dynamic grant watcher
        # One stable bound method: unsubscribe matches by identity, and
        # every ``self._on_grant`` access builds a fresh bound object.
        self._grant_watcher = self._on_grant
        self._grants_wired = False
        self._initiated = {}  # tid -> initiate tick (until terminal)
        self._begun = set()  # tids whose begin latency was recorded
        self._blocked = {}  # (tid, oid) -> tick of LOCK_BLOCKED
        self._commit_requested = {}  # tid -> tick
        self._abort_requested = {}  # tid -> tick
        # Pre-bound instruments: one registry lookup here instead of one
        # per event — the fold body must stay off the hot path's bill.
        self._c_initiate = metrics.counter("primitive.initiate.calls")
        self._c_delegate = metrics.counter("primitive.delegate.calls")
        self._c_permit = metrics.counter("primitive.permit.calls")
        self._c_lock_blocked = metrics.counter("lock.blocked")
        self._c_commit_blocked = metrics.counter("commit.blocked")
        self._c_committed = metrics.counter("txn.committed")
        self._c_aborted = metrics.counter("txn.aborted")
        self._c_prepared = metrics.counter("twophase.prepared")
        self._c_victims = metrics.counter("deadlock.victims")
        self._c_form_dep = {}  # dep_type -> counter (tiny cardinality)
        self._h_begin = metrics.histogram("latency.initiate_to_begin_ticks")
        self._h_blocked = metrics.histogram("lock.blocked_ticks")
        self._h_moved = metrics.histogram("delegate.oids_moved")
        self._h_commit = metrics.histogram("latency.commit_ticks")
        self._h_abort = metrics.histogram("latency.abort_ticks")
        self._h_lifetime = metrics.histogram("txn.lifetime_ticks")

    def __call__(self, event):
        """Fold one event into the registry."""
        kind = event.kind
        tid = event.tid
        if kind is EventKind.INITIATE:
            self._c_initiate.value += 1
            self._initiated[tid] = event.tick
        elif kind is EventKind.BEGIN:
            started = self._initiated.get(tid)
            if started is not None and tid not in self._begun:
                self._begun.add(tid)
                self._h_begin.observe(event.tick - started)
        elif kind is EventKind.LOCK_BLOCKED:
            self._c_lock_blocked.value += 1
            self._blocked[(tid, event.detail["oid"])] = event.tick
            if self.bus is not None and not self._grants_wired:
                self._grants_wired = True
                self.bus.subscribe(self._grant_watcher, kinds=self.GRANT_KINDS)
        elif kind is EventKind.DELEGATE:
            self._c_delegate.value += 1
            self._h_moved.observe(len(event.detail.get("oids", ())))
        elif kind is EventKind.PERMIT:
            self._c_permit.value += 1
        elif kind is EventKind.FORM_DEPENDENCY:
            dep_type = event.detail["dep_type"]
            counter = self._c_form_dep.get(dep_type)
            if counter is None:
                counter = self._c_form_dep[dep_type] = self.metrics.counter(
                    "primitive.form_dependency.calls", dep_type=dep_type
                )
            counter.value += 1
        elif kind is EventKind.COMMIT_REQUESTED:
            self._commit_requested.setdefault(tid, event.tick)
        elif kind is EventKind.COMMIT_BLOCKED:
            self._c_commit_blocked.value += 1
        elif kind is EventKind.COMMITTED:
            self._c_committed.value += 1
            requested = self._commit_requested.pop(tid, None)
            if requested is not None:
                self._h_commit.observe(event.tick - requested)
            self._terminate(tid, event.tick)
        elif kind is EventKind.ABORT_REQUESTED:
            self._abort_requested.setdefault(tid, event.tick)
        elif kind is EventKind.ABORTED:
            self._c_aborted.value += 1
            requested = self._abort_requested.pop(tid, None)
            if requested is not None:
                self._h_abort.observe(event.tick - requested)
            self._commit_requested.pop(tid, None)
            self._terminate(tid, event.tick)
        elif kind is EventKind.PREPARED:
            self._c_prepared.value += 1
        elif kind is EventKind.DEADLOCK_VICTIM:
            self._c_victims.value += 1

    def _on_grant(self, event):
        """Close a LOCK_BLOCKED interval when its grant arrives."""
        blocked_at = self._blocked.pop((event.tid, event.detail["oid"]), None)
        if blocked_at is not None:
            self._h_blocked.observe(event.tick - blocked_at)
        if not self._blocked:
            self._unwire_grants()

    def _unwire_grants(self):
        if self._grants_wired:
            self._grants_wired = False
            self.bus.unsubscribe(self._grant_watcher)

    def _terminate(self, tid, tick):
        started = self._initiated.pop(tid, None)
        self._begun.discard(tid)
        if started is not None:
            self._h_lifetime.observe(tick - started)
        if self._blocked:
            # A transaction can die while still blocked (deadlock victim,
            # watchdog abort); its grant never comes, so drop its entries
            # rather than pinning the grant watcher forever.
            for key in [k for k in self._blocked if k[0] == tid]:
                del self._blocked[key]
            if not self._blocked:
                self._unwire_grants()


class ObservabilityKit:
    """One metrics registry + one span builder, attachable everywhere.

    The kit is idempotent per target (attaching the same fabric twice is
    a no-op) and survives site reboots: a :class:`~repro.cluster.site.Site`
    holding a kit re-wires it from ``_boot`` after every crash/restart,
    because the restart builds a fresh manager and event bus.
    """

    def __init__(self, clock=None):
        self.metrics = MetricsRegistry(clock=clock)
        self.spans = SpanBuilder()
        self._attached = set()  # ids of objects already wired

    def _once(self, target, tag):
        key = (tag, id(target))
        if key in self._attached:
            return False
        self._attached.add(key)
        return True

    # -- single components -------------------------------------------------

    def attach_manager(self, manager, trace="local", correlate=None):
        """Subscribe metrics + spans to a manager's bus and install the
        per-primitive latency hook (``manager.metrics``)."""
        if not self._once(manager.events, "manager"):
            return self
        scoped = (
            ScopedMetrics(self.metrics, site=trace)
            if trace != "local"
            else self.metrics
        )
        manager.events.subscribe(
            EventMetrics(scoped, bus=manager.events),
            kinds=EventMetrics.KINDS,
        )
        self.spans.subscribe_to(
            manager.events, trace=trace, correlate=correlate
        )
        manager.metrics = scoped
        if self.metrics.clock is None:
            self.metrics.clock = manager.clock
        self.attach_log(manager.storage.log, trace=trace)
        return self

    def attach_log(self, log, trace="local"):
        """Install the WAL append/flush metrics hook.

        A segmented log (the sharded engine) gets one scoped view per
        shard segment — ``wal.appends{shard=2}`` and friends — plus a
        collector mirroring per-segment census rows as gauges, so shard
        imbalance is visible straight off the registry.
        """
        if not self._once(log, "log"):
            return self
        base_labels = {"site": trace} if trace != "local" else {}
        segments = getattr(log, "segments", None)
        if segments is None:
            log.metrics = (
                ScopedMetrics(self.metrics, **base_labels)
                if base_labels
                else self.metrics
            )
            return self
        for index, segment in enumerate(segments):
            segment.metrics = ScopedMetrics(
                self.metrics, shard=index, **base_labels
            )
        storage = getattr(log, "_storage", None)
        if storage is not None and hasattr(storage, "segment_stats"):

            def collect(registry):
                for row in storage.segment_stats():
                    shard = row["shard"]
                    for name, value in row.items():
                        if name == "shard":
                            continue
                        registry.set_gauge(
                            f"segment.{name}",
                            value,
                            shard=shard,
                            **base_labels,
                        )

            self.metrics.add_collector(collect)
        return self

    def attach_fabric(self, fabric):
        """Install the per-site message-count hook and a stats collector."""
        if not self._once(fabric, "fabric"):
            return self
        fabric.metrics = self.metrics

        def collect(registry):
            for name, value in fabric.stats.items():
                registry.set_gauge(f"fabric.{name}", value)

        self.metrics.add_collector(collect)
        return self

    def attach_watchdog(self, watchdog, trace="local"):
        """Mirror the watchdog's containment accounting as gauges."""
        if not self._once(watchdog, "watchdog"):
            return self

        def collect(registry):
            for name, value in watchdog.stats.items():
                if trace != "local":
                    registry.set_gauge(f"watchdog.{name}", value, site=trace)
                else:
                    registry.set_gauge(f"watchdog.{name}", value)

        self.metrics.add_collector(collect)
        return self

    def attach_workflow(self, engine, trace="workflow"):
        """Wire a :class:`~repro.workflow.durable.DurableWorkflowEngine`.

        Three hooks: live counters (``workflow.started`` and friends)
        through the engine's ``metrics`` attribute, a collector
        mirroring the engine's stats dict as gauges, and one span per
        execution folded from the durable record stream — opened by the
        ``started`` record, annotated with every step attempt / signal /
        compensation, closed (with the outcome as its status) by the
        ``finished`` record.
        """
        if not self._once(engine, "workflow"):
            return self
        engine.metrics = self.metrics

        def collect(registry):
            for name, value in engine.stats.items():
                registry.set_gauge(f"workflow.stats.{name}", value)

        self.metrics.add_collector(collect)
        spans = self.spans.spans
        annotated = ("definition", "step", "alt", "tid", "signal", "name",
                     "outcome", "on_timeout")

        def on_record(wid, kind, fields):
            tick = engine.clock.peek()
            key = (trace, wid)
            span = spans.get(key)
            if span is None:
                span = spans[key] = {
                    "trace": trace,
                    "tid": wid,
                    "start": tick,
                    "end": None,
                    "status": "open",
                    "reason": None,
                    "gid": None,
                    "prepared": None,
                    "origin_msg": None,
                    "links": [],
                }
            span["links"].append({
                "type": kind,
                "tick": tick,
                **{k: fields[k] for k in annotated if k in fields},
            })
            if kind == "finished":
                span["end"] = tick
                span["status"] = fields.get("outcome", "finished")

        engine.on_record = on_record
        return self

    # -- assemblies --------------------------------------------------------

    def attach_stack(self, stack):
        """Wire a single-site :class:`~repro.chaos.stack.ChaosStack`."""
        self.attach_manager(stack.manager)
        if stack.resilience is not None:
            self.attach_watchdog(stack.resilience.watchdog)
        return self

    def attach_cluster(self, cluster):
        """Wire a whole :class:`~repro.cluster.cluster.Cluster`.

        Each site re-wires itself after restarts; the shared fabric and
        clock are wired once here.
        """
        self.metrics.clock = cluster.clock
        self.attach_fabric(cluster.fabric)
        for name in sorted(cluster.sites):
            cluster.sites[name].attach_observability(self)
        return self

    # -- fabric-message correlation ---------------------------------------

    @contextmanager
    def message_context(self, site, msg):
        """While a site handles ``msg``, spans it creates record the
        message id that caused them (cross-site causality)."""
        previous = self.spans.current_message
        self.spans.current_message = (site, msg.msg_id, msg.src, msg.kind)
        try:
            yield
        finally:
            self.spans.current_message = previous

    # -- export ------------------------------------------------------------

    def snapshot(self):
        """The metrics snapshot (collectors included)."""
        return self.metrics.snapshot()

    def write_metrics(self, path):
        """Write the metrics snapshot to ``path`` as JSON."""
        with open(path, "w") as handle:
            handle.write(self.metrics.to_json())
            handle.write("\n")

    def write_spans(self, path):
        """Write the span table to ``path`` as JSONL; returns the count."""
        with open(path, "w") as handle:
            return self.spans.export_jsonl(handle)


def install_observability(
    manager=None, fabric=None, watchdog=None, cluster=None, clock=None
):
    """Build a kit and attach it to whatever is given.

    Any combination works: a bare manager (unit tests, benchmarks), a
    manager plus its fabric and watchdog (one instrumented site), or a
    whole cluster.  Returns the :class:`ObservabilityKit`.
    """
    kit = ObservabilityKit(clock=clock)
    if cluster is not None:
        kit.attach_cluster(cluster)
    if manager is not None:
        kit.attach_manager(manager)
    if fabric is not None:
        kit.attach_fabric(fabric)
    if watchdog is not None:
        kit.attach_watchdog(watchdog)
    return kit
