"""Transaction-lifetime spans folded from the event stream.

ASSET's behaviour is emergent: a transaction's fate is decided by
delegations, permits, and dependency edges scattered across the event
stream (and, in a cluster, across sites).  The :class:`SpanBuilder`
folds that stream back into one record per transaction — a **span** from
``INITIATE`` to the terminal event — with the cross-transaction
primitives attached as **links**, so a trace viewer (or a test oracle)
sees the paper's history structure directly.

Correlation works on three axes:

* **ticks** — every event carries the shared logical clock's tick, so
  spans from different sites of one cluster interleave on a single
  total order (the same order the ACTA history recorder sees);
* **correlation ids** — a span's ``correlation`` is ``site:tid`` of the
  transaction it *stands for*: a proxy's span carries its remote owner's
  identity, so all spans of one logical transaction share an id;
* **fabric message ids** — a span created while a site handles a fabric
  message records that message's ``msg_id`` as ``origin_msg``, tying
  remote-driven spans to the exact message that caused them.

Spans export as JSONL (one JSON object per line, start-tick order),
the shape ``--trace-out`` on :mod:`repro.chaos.replay` writes.
"""

from __future__ import annotations

import json

from repro.common.events import EventKind

__all__ = ["SPAN_KINDS", "SpanBuilder"]

# The narrow subscription: everything a span needs, nothing the manager's
# per-operation hot path emits (READ/WRITE stay unwatched).
SPAN_KINDS = (
    EventKind.INITIATE,
    EventKind.BEGIN,
    EventKind.COMPLETE,
    EventKind.DELEGATE,
    EventKind.PERMIT,
    EventKind.FORM_DEPENDENCY,
    EventKind.PREPARED,
    EventKind.COMMITTED,
    EventKind.ABORTED,
)

_TERMINAL = {EventKind.COMMITTED: "committed", EventKind.ABORTED: "aborted"}


class _SpanView:
    """One trace's subscriber: stamps a site name on every event."""

    __slots__ = ("builder", "trace", "correlate")

    def __init__(self, builder, trace, correlate):
        self.builder = builder
        self.trace = trace
        self.correlate = correlate

    def __call__(self, event):
        """Deliver one bus event into the shared builder."""
        self.builder._fold(self, event)


class SpanBuilder:
    """Folds one or many event buses into transaction spans.

    One builder serves a whole cluster: each site subscribes a *view*
    (:meth:`subscribe_to`) carrying its trace name, and all views feed
    one span table keyed ``(trace, tid)``.  ``current_message`` is the
    fabric-message context a :class:`~repro.obs.wiring.ObservabilityKit`
    maintains while a site handler runs.
    """

    def __init__(self):
        self.spans = {}  # (trace, tid value) -> span dict
        self._tids = {}  # (trace, tid value) -> tid object (for correlate)
        self._correlates = {}  # trace -> correlate callable | None
        self.current_message = None  # (site, msg_id, src, kind) | None

    # -- subscription ------------------------------------------------------

    def subscribe_to(self, bus, trace="local", correlate=None):
        """Attach a narrow-kind view of this builder to ``bus``.

        ``correlate(tid) -> str`` resolves a transaction's logical
        identity at *export* time (proxies learn their owner only after
        their INITIATE event fired).  Returns the subscriber callable so
        the caller can ``unsubscribe`` it later.
        """
        view = _SpanView(self, trace, correlate)
        self._correlates[trace] = correlate
        bus.subscribe(view, kinds=SPAN_KINDS)
        return view

    # -- folding -----------------------------------------------------------

    def _span(self, view, event):
        key = (view.trace, event.tid.value)
        span = self.spans.get(key)
        if span is None:
            span = {
                "trace": view.trace,
                "tid": event.tid.value,
                "start": event.tick,
                "end": None,
                "status": "open",
                "reason": None,
                "gid": None,
                "prepared": None,
                "origin_msg": None,
                "links": [],
            }
            current = self.current_message
            if current is not None and current[0] == view.trace:
                span["origin_msg"] = current[1]
            self.spans[key] = span
            self._tids[key] = event.tid
        return span

    def _fold(self, view, event):
        span = self._span(view, event)
        kind = event.kind
        detail = event.detail
        if kind is EventKind.INITIATE:
            span["start"] = min(span["start"], event.tick)
        elif kind is EventKind.BEGIN:
            span["links"].append({"type": "begin", "tick": event.tick})
        elif kind is EventKind.COMPLETE:
            span["links"].append({"type": "complete", "tick": event.tick})
        elif kind is EventKind.DELEGATE:
            span["links"].append(
                {
                    "type": "delegate",
                    "tick": event.tick,
                    "peer": detail["to"].value,
                    "oids": [oid.value for oid in detail.get("oids", ())],
                }
            )
        elif kind is EventKind.PERMIT:
            receiver = detail.get("receiver")
            span["links"].append(
                {
                    "type": "permit",
                    "tick": event.tick,
                    "peer": receiver.value if receiver is not None else None,
                    "oid": detail["oid"].value,
                }
            )
        elif kind is EventKind.FORM_DEPENDENCY:
            span["links"].append(
                {
                    "type": "dependency",
                    "tick": event.tick,
                    "peer": detail["other"].value,
                    "dep_type": detail["dep_type"],
                }
            )
        elif kind is EventKind.PREPARED:
            span["prepared"] = event.tick
            span["gid"] = detail.get("gid")
        elif kind in _TERMINAL:
            span["end"] = event.tick
            span["status"] = _TERMINAL[kind]
            reason = detail.get("reason")
            if reason:
                span["reason"] = reason

    # -- export ------------------------------------------------------------

    def export(self):
        """All spans as plain dicts, in start-tick order.

        Correlation ids are resolved here, not at fold time: a proxy's
        owner is registered just *after* the proxy's INITIATE event, so
        only a late resolution sees it.
        """
        out = []
        for key in sorted(self.spans, key=lambda k: self.spans[k]["start"]):
            span = dict(self.spans[key])
            span["links"] = list(span["links"])
            span["correlation"] = self._correlation(key)
            out.append(span)
        return out

    def _correlation(self, key):
        correlate = self._correlates.get(key[0])
        tid = self._tids.get(key)
        if correlate is not None and tid is not None:
            resolved = correlate(tid)
            if resolved:
                return resolved
        return f"{key[0]}:{key[1]}"

    def export_jsonl(self, handle):
        """Write :meth:`export` as JSONL to an open text ``handle``."""
        for span in self.export():
            handle.write(json.dumps(span, sort_keys=True))
            handle.write("\n")
        return len(self.spans)
