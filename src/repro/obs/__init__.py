"""Observability: metrics and trace spans over the event bus.

``repro.obs`` is the measurement layer the ROADMAP's perf work is judged
with.  It adds nothing to the transaction model — it *watches* it:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms keyed by name + tiny label sets, timed by the deterministic
  logical clock so snapshots are reproducible run-to-run;
* :mod:`repro.obs.spans` — a :class:`~repro.obs.spans.SpanBuilder` that
  folds the event stream into one span per transaction (initiate →
  outcome, delegation/permit/dependency edges as links, cross-site
  correlation ids), exported as JSONL;
* :mod:`repro.obs.wiring` — the attach points: narrow-kind bus
  subscriptions plus the optional ``metrics`` attributes on the manager,
  the WAL, and the fabric.  :func:`install_observability` is the one
  call that wires any combination.

Everything is pay-for-what-you-use: a detached system runs exactly the
pre-PR-5 code paths (one ``is None`` test per hook), and the EX19 bench
gates the attached overhead at ≤5% of the manager hot path.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_TICK_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedMetrics,
)
from repro.obs.spans import SPAN_KINDS, SpanBuilder
from repro.obs.wiring import (
    EventMetrics,
    ObservabilityKit,
    install_observability,
)

__all__ = [
    "Counter",
    "DEFAULT_TICK_BUCKETS",
    "EventMetrics",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityKit",
    "SPAN_KINDS",
    "ScopedMetrics",
    "SpanBuilder",
    "install_observability",
]
