"""Workflow definitions: a spec plus control-flow the spec can't carry.

A :class:`WorkflowDefinition` names a :class:`~repro.workflow.spec
.WorkflowSpec` and decorates its steps with *signal waits*: before the
named step runs, the execution parks until an external signal arrives
(or its timer expires).  This is the piece that makes workflows
long-running — the execution can outlive the process, which is why the
durable engine (:mod:`repro.workflow.durable`) persists every transition.

Definitions hold Python callables (transaction bodies), which cannot be
serialized into the WAL.  The durable ``started`` record therefore
carries only the definition *name*; after a restart the host re-registers
its definitions in a :class:`DefinitionRegistry` and recovery looks the
bodies up by name.  This is the standard split between durable execution
state and re-deployed code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AssetError

_TIMEOUT_ACTIONS = ("fail", "skip")


@dataclass(frozen=True)
class SignalWait:
    """Park before a step until ``signal`` arrives.

    ``timeout`` is a logical-tick budget (``None`` waits forever).  When
    it expires, ``on_timeout`` decides the step's fate: ``"fail"`` treats
    the step as failed (compensating the workflow if the step is
    required), ``"skip"`` skips the step and moves on.
    """

    signal: str
    timeout: object = None
    on_timeout: str = "fail"


class WorkflowDefinition:
    """A named workflow: spec + per-step signal waits."""

    def __init__(self, name, spec, waits=None):
        self.name = name
        self.spec = spec
        self.waits = dict(waits or {})

    def wait_for(self, step, signal, timeout=None, on_timeout="fail"):
        """Attach a signal wait before ``step`` (fluent: returns self)."""
        self.waits[step] = SignalWait(
            signal=signal, timeout=timeout, on_timeout=on_timeout
        )
        return self

    def validate(self):
        """Validate the spec and the waits; returns self."""
        self.spec.validate()
        step_names = {task.name for task in self.spec}
        for step, wait in self.waits.items():
            if step not in step_names:
                raise AssetError(
                    f"definition {self.name!r}: signal wait on unknown"
                    f" step {step!r}"
                )
            if wait.on_timeout not in _TIMEOUT_ACTIONS:
                raise AssetError(
                    f"definition {self.name!r}: step {step!r} has"
                    f" on_timeout={wait.on_timeout!r}, expected one of"
                    f" {_TIMEOUT_ACTIONS}"
                )
            if wait.timeout is not None and wait.timeout < 0:
                raise AssetError(
                    f"definition {self.name!r}: step {step!r} has a"
                    " negative timeout"
                )
        return self


class DefinitionRegistry:
    """Name → definition lookup; recovery's bridge back to code.

    The durable log stores definition *names*; whoever restarts the site
    must register the same definitions (same name, compatible spec)
    before calling ``recover``.
    """

    def __init__(self):
        self._definitions = {}

    def register(self, definition):
        """Validate and register ``definition``; returns it."""
        definition.validate()
        self._definitions[definition.name] = definition
        return definition

    def get(self, name):
        if name not in self._definitions:
            raise AssetError(
                f"unknown workflow definition {name!r}: re-register the"
                " site's definitions before recovering executions"
            )
        return self._definitions[name]

    def __contains__(self, name):
        return name in self._definitions

    def names(self):
        return sorted(self._definitions)
