"""Workflows (section 3.2.3 and the appendix).

Workflows are "long-lived activities with transaction-like components
having inter-related dependencies".  The paper shows one written directly
against the primitives (the X_conference travel program); this package
provides both:

* :mod:`repro.workflow.spec` — a declarative workflow description:
  tasks with ordered alternatives, optional tasks, racing alternatives,
  compensations, and inter-task dependencies ("it is possible to design a
  language to specify workflows", as the paper notes);
* :mod:`repro.workflow.engine` — executes a spec over a runtime using
  the same translation schemes as section 3;
* :mod:`repro.workflow.travel` — the appendix scenario: inventory-backed
  flight/hotel/car reservations, plus :func:`x_conference`, a literal
  transcription of the appendix program;
* :mod:`repro.workflow.definition` / :mod:`repro.workflow.execution` /
  :mod:`repro.workflow.records` / :mod:`repro.workflow.durable` — the v2
  durable orchestrator: named definitions with signal waits and timers,
  WAL-persisted execution state, and a start/resume/cancel/signal/status
  protocol whose in-flight executions survive site crashes.
"""

from repro.workflow.definition import (
    DefinitionRegistry,
    SignalWait,
    WorkflowDefinition,
)
from repro.workflow.durable import DurableWorkflowEngine, ExecutionLeaseBoard
from repro.workflow.engine import TaskStatus, WorkflowEngine, WorkflowResult
from repro.workflow.execution import ExecutionStatus, WorkflowExecution
from repro.workflow.spec import TaskSpec, WorkflowSpec
from repro.workflow.travel import TravelAgency, x_conference

__all__ = [
    "DefinitionRegistry",
    "DurableWorkflowEngine",
    "ExecutionLeaseBoard",
    "ExecutionStatus",
    "SignalWait",
    "TaskSpec",
    "TaskStatus",
    "TravelAgency",
    "WorkflowDefinition",
    "WorkflowEngine",
    "WorkflowExecution",
    "WorkflowResult",
    "WorkflowSpec",
    "x_conference",
]
