"""Durable workflow record vocabulary.

The storage layer persists workflow-orchestration state as typed
:class:`~repro.storage.log.WorkflowRecord` entries (``wid``, ``kind``,
``payload``).  This module owns the ``kind`` vocabulary and the payload
codec the durable engine and recovery both speak.

Kinds
-----

``started``
    The execution exists.  Payload: ``{"definition": name}`` plus an
    optional caller context.  Written before any step runs.
``step_attempt``
    A forward step is about to commit transaction ``tid``.  Payload:
    ``{"step": name, "alt": label, "tid": value}``.  Force-logged
    *before* the commit record, so recovery can decide "did this step
    commit?" without a separate marker: the step committed iff one of
    its attempt tids is a winner in the log-replay analysis.  Stale
    attempts (crash between attempt and commit) name loser tids and are
    ignored — the step is simply re-issued on resume.
``step_failed`` / ``step_skipped``
    Terminal non-commit outcomes for a step.  Payload: ``{"step": name}``.
``signal_wait``
    The execution paused for an external signal.  Payload:
    ``{"step": name, "signal": signal, "timeout": ticks-or-null,
    "on_timeout": "fail"|"skip"}``.
``signal``
    A signal was delivered.  Payload: ``{"name": signal, "payload": v}``.
``signal_timeout``
    The wait's deadline expired.  Payload: ``{"step": name,
    "signal": signal}``.
``comp_attempt``
    A compensation for ``step`` is about to commit ``tid`` — same
    attempt-before-commit discipline as ``step_attempt``.
``cancelled``
    A cancel request was durably accepted (compensations follow).
``finished``
    Terminal.  Payload: ``{"outcome": "completed"|"compensated"|
    "cancelled"}``.

Every kind is force-flushed by ``log_workflow`` (flat and segmented
WALs), so an acknowledged transition is never lost to a crash.
"""

from __future__ import annotations

from repro.common.codec import decode_json, encode_json

STARTED = "started"
STEP_ATTEMPT = "step_attempt"
STEP_FAILED = "step_failed"
STEP_SKIPPED = "step_skipped"
SIGNAL_WAIT = "signal_wait"
SIGNAL = "signal"
SIGNAL_TIMEOUT = "signal_timeout"
COMP_ATTEMPT = "comp_attempt"
CANCELLED = "cancelled"
FINISHED = "finished"

KINDS = frozenset({
    STARTED,
    STEP_ATTEMPT,
    STEP_FAILED,
    STEP_SKIPPED,
    SIGNAL_WAIT,
    SIGNAL,
    SIGNAL_TIMEOUT,
    COMP_ATTEMPT,
    CANCELLED,
    FINISHED,
})

OUTCOME_COMPLETED = "completed"
OUTCOME_COMPENSATED = "compensated"
OUTCOME_CANCELLED = "cancelled"


def encode_payload(fields):
    """Encode a record payload (a small JSON-safe dict) as bytes."""
    return encode_json(dict(fields))


def decode_payload(raw):
    """Decode bytes produced by :func:`encode_payload`."""
    if not raw:
        return {}
    return decode_json(raw)


def workflow_records(records, wid=None):
    """Yield the WorkflowRecords in ``records`` (optionally one wid's)."""
    from repro.storage.log import WorkflowRecord

    for record in records:
        if isinstance(record, WorkflowRecord):
            if wid is None or record.wid == wid:
                yield record
