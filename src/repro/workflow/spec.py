"""Declarative workflow specifications.

A workflow is an ordered collection of tasks.  Each task has:

* **alternatives** — transaction bodies tried in preference order
  (contingent semantics: "X prefers to fly on Delta, United, or American
  in that order"), or *raced* in parallel with first-completion-wins
  (the appendix's National/Avis car rental);
* an optional **compensation** — run if the workflow later fails after
  this task committed (the flight is cancelled when no hotel exists);
* an **optional** flag — failure does not fail the workflow ("if a car
  cannot be rented, the trip can still proceed");
* **depends_on** — names of tasks that must succeed first.

The engine (:mod:`repro.workflow.engine`) translates all of this into the
primitives, exactly as the hand-written appendix program does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AssetError


@dataclass(frozen=True)
class Alternative:
    """One way to accomplish a task: a body, its args, and a label."""

    body: object
    args: tuple = ()
    label: str = ""


@dataclass
class TaskSpec:
    """One workflow task; see the module docstring for field meanings."""

    name: str
    alternatives: list = field(default_factory=list)
    compensation: object = None
    compensation_args: tuple = ()
    optional: bool = False
    race: bool = False
    depends_on: tuple = ()

    def alternative(self, body, args=(), label=""):
        """Append an alternative (fluent: returns self)."""
        self.alternatives.append(
            Alternative(body=body, args=tuple(args), label=label)
        )
        return self

    def compensate_with(self, body, args=()):
        """Attach the compensating transaction (fluent: returns self)."""
        self.compensation = body
        self.compensation_args = tuple(args)
        return self


class WorkflowSpec:
    """An ordered, dependency-checked set of tasks."""

    def __init__(self, name="workflow"):
        self.name = name
        self.tasks = []

    def task(self, name, optional=False, race=False, depends_on=()):
        """Add a task and return its :class:`TaskSpec` for chaining."""
        spec = TaskSpec(
            name=name,
            optional=optional,
            race=race,
            depends_on=tuple(depends_on),
        )
        self.tasks.append(spec)
        return spec

    def validate(self):
        """Check names are unique, dependencies exist and look backwards.

        Tasks run in declaration order, so a dependency must name an
        earlier task; that also rules out cycles.
        """
        seen = set()
        for task in self.tasks:
            if task.name in seen:
                raise AssetError(f"duplicate task name: {task.name!r}")
            if not task.alternatives:
                raise AssetError(f"task {task.name!r} has no alternatives")
            for dep in task.depends_on:
                if dep not in seen:
                    raise AssetError(
                        f"task {task.name!r} depends on {dep!r}, which is"
                        " not an earlier task"
                    )
            seen.add(task.name)
        return self

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self):
        return len(self.tasks)
