"""Declarative workflow specifications.

A workflow is an ordered collection of tasks.  Each task has:

* **alternatives** — transaction bodies tried in preference order
  (contingent semantics: "X prefers to fly on Delta, United, or American
  in that order"), or *raced* in parallel with first-completion-wins
  (the appendix's National/Avis car rental);
* an optional **compensation** — run if the workflow later fails after
  this task committed (the flight is cancelled when no hotel exists);
  compensations may also be attached per-alternative, in which case the
  winning alternative's compensation is preferred over the task-level one;
* an **optional** flag — failure does not fail the workflow ("if a car
  cannot be rented, the trip can still proceed");
* **depends_on** — names of tasks that must succeed first.  Dependencies
  may name tasks declared later; :meth:`WorkflowSpec.ordered` computes a
  stable topological order and :meth:`WorkflowSpec.validate` rejects
  cycles.

The engine (:mod:`repro.workflow.engine`) translates all of this into the
primitives, exactly as the hand-written appendix program does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AssetError


@dataclass(frozen=True)
class Alternative:
    """One way to accomplish a task: a body, its args, and a label.

    ``pacer`` marks an alternative that exists only to pace a race — it
    may run, but is never allowed to *win* (commit).  The appendix uses
    the shape for "try National, but give up when the meter transaction
    finishes first"; a pacer in our model is a pure race loser.  Because
    a pacer can never commit, attaching a ``compensation`` to one is a
    spec error (there is never anything to compensate).
    """

    body: object
    args: tuple = ()
    label: str = ""
    compensation: object = None
    compensation_args: tuple = ()
    pacer: bool = False


@dataclass
class TaskSpec:
    """One workflow task; see the module docstring for field meanings."""

    name: str
    alternatives: list = field(default_factory=list)
    compensation: object = None
    compensation_args: tuple = ()
    optional: bool = False
    race: bool = False
    depends_on: tuple = ()

    def alternative(self, body, args=(), label="", compensation=None,
                    compensation_args=(), pacer=False):
        """Append an alternative (fluent: returns self)."""
        self.alternatives.append(
            Alternative(
                body=body,
                args=tuple(args),
                label=label,
                compensation=compensation,
                compensation_args=tuple(compensation_args),
                pacer=pacer,
            )
        )
        return self

    def compensate_with(self, body, args=()):
        """Attach the compensating transaction (fluent: returns self)."""
        self.compensation = body
        self.compensation_args = tuple(args)
        return self

    def compensation_for(self, label):
        """The (body, args) compensating the alternative named ``label``.

        Prefers the winning alternative's own compensation; falls back
        to the task-level one.  Returns ``(None, ())`` when neither is
        attached.
        """
        for alternative in self.alternatives:
            if alternative.label == label and alternative.compensation:
                return alternative.compensation, alternative.compensation_args
        return self.compensation, self.compensation_args


class WorkflowSpec:
    """An ordered, dependency-checked set of tasks."""

    def __init__(self, name="workflow"):
        self.name = name
        self.tasks = []

    def task(self, name, optional=False, race=False, depends_on=()):
        """Add a task and return its :class:`TaskSpec` for chaining."""
        spec = TaskSpec(
            name=name,
            optional=optional,
            race=race,
            depends_on=tuple(depends_on),
        )
        self.tasks.append(spec)
        return spec

    def validate(self):
        """Structural checks; returns self so calls chain.

        Rejects duplicate task names, tasks with no alternatives,
        dependencies on unknown tasks, dependency *cycles* (forward
        references are legal — :meth:`ordered` resolves them), pacer
        alternatives outside a race or filling a whole race, and
        compensations attached to never-committing (pacer) alternatives.
        """
        names = set()
        for task in self.tasks:
            if task.name in names:
                raise AssetError(f"duplicate task name: {task.name!r}")
            names.add(task.name)
            if not task.alternatives:
                raise AssetError(f"task {task.name!r} has no alternatives")
            for alternative in task.alternatives:
                if alternative.pacer and not task.race:
                    raise AssetError(
                        f"task {task.name!r}: pacer alternative"
                        f" {alternative.label!r} outside a race"
                    )
                if alternative.pacer and alternative.compensation:
                    raise AssetError(
                        f"task {task.name!r}: alternative"
                        f" {alternative.label!r} never commits (pacer)"
                        " but carries a compensation"
                    )
            if task.race and all(a.pacer for a in task.alternatives):
                raise AssetError(
                    f"task {task.name!r}: every race alternative is a"
                    " pacer, so the task can never commit"
                )
            for dep in task.depends_on:
                if dep == task.name:
                    raise AssetError(
                        f"task {task.name!r} depends on itself"
                    )
        for task in self.tasks:
            for dep in task.depends_on:
                if dep not in names:
                    raise AssetError(
                        f"task {task.name!r} depends on unknown task"
                        f" {dep!r}"
                    )
        self._toposort(names)  # raises on cycles
        return self

    def _toposort(self, names=None):
        """Kahn's algorithm, stable on declaration order; raises on cycles."""
        if names is None:
            names = {task.name for task in self.tasks}
        indegree = {task.name: len(set(task.depends_on)) for task in self.tasks}
        dependants = {name: [] for name in names}
        for task in self.tasks:
            for dep in set(task.depends_on):
                dependants[dep].append(task.name)
        by_name = {task.name: task for task in self.tasks}
        # Stable: among ready tasks, declaration order breaks ties.
        order = []
        ready = [task.name for task in self.tasks if indegree[task.name] == 0]
        while ready:
            name = ready.pop(0)
            order.append(by_name[name])
            freed = []
            for succ in dependants[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    freed.append(succ)
            if freed:
                position = {t.name: i for i, t in enumerate(self.tasks)}
                ready.extend(freed)
                ready.sort(key=lambda n: position[n])
        if len(order) < len(self.tasks):
            stuck = sorted(
                name for name, degree in indegree.items() if degree > 0
            )
            raise AssetError(
                f"workflow {self.name!r} has a dependency cycle through"
                f" {stuck}"
            )
        return order

    def ordered(self):
        """Tasks in a stable topological order (declaration order among
        tasks whose dependencies are equally satisfied)."""
        return self._toposort()

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self):
        return len(self.tasks)
