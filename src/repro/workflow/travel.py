"""The appendix travel scenario.

Person X travels to a conference (June 11-14, 1994): a flight on Delta,
United, or American *in that order*; a room at hotel Equator (required —
no hotel means the already-made flight reservation must be compensated);
and optionally a car from National or Avis, whichever reservation finishes
first.

Inventory lives in persistent objects (one per airline / hotel / rental
company) holding an availability counter and a booking list, so every
reservation is a real read-modify-write transaction that aborts when sold
out.  :func:`x_conference` transcribes the appendix program literally
against the driver API; :func:`build_x_conference_spec` expresses the same
activity declaratively for the workflow engine — the paper's "it is
possible to design a language to specify workflows" direction.
"""

from __future__ import annotations

from repro.common.codec import decode_json, encode_json
from repro.workflow.spec import WorkflowSpec

AIRLINES = ("Delta", "United", "American")
HOTELS = ("Equator",)
CAR_COMPANIES = ("National", "Avis")

JUNE_11 = "6/11/1994"
JUNE_14 = "6/14/1994"


# ---------------------------------------------------------------------------
# reservation transaction bodies (the appendix's assumed functions)
# ---------------------------------------------------------------------------


def make_reservation(tx, oid, d1, d2):
    """Reserve one unit of the resource in ``oid`` for the date range.

    Aborts when nothing is available, as the paper's reservation
    subtransactions do.  Returns the booking entry.
    """
    record = decode_json((yield tx.read(oid)))
    if record["available"] <= 0:
        yield tx.abort()
    booking = [d1, d2]
    record["available"] -= 1
    record["bookings"].append(booking)
    yield tx.write(oid, encode_json(record))
    return booking


def cancel_reservation(tx, oid, d1, d2):
    """Compensate a reservation: remove one matching booking.

    Idempotent against double cancellation: with no matching booking it
    commits without effect (compensations must eventually commit).
    """
    record = decode_json((yield tx.read(oid)))
    booking = [d1, d2]
    if booking in record["bookings"]:
        record["bookings"].remove(booking)
        record["available"] += 1
        yield tx.write(oid, encode_json(record))
    return record["available"]


# The appendix names; all are the same shape over different inventories.
flight_reservation = make_reservation
hotel_reservation = make_reservation
car_reservation = make_reservation
cancel_flight_reservation = cancel_reservation
cancel_hotel_reservation = cancel_reservation


class TravelAgency:
    """Owns the inventory objects the reservation transactions act on."""

    def __init__(self, runtime, availability=None):
        """Create inventories.  ``availability`` maps resource name (e.g.
        ``"Delta"``, ``"Equator"``, ``"Avis"``) to seat/room/car counts;
        unnamed resources default to 5 units."""
        self.runtime = runtime
        availability = dict(availability or {})
        names = list(AIRLINES) + list(HOTELS) + list(CAR_COMPANIES)

        def setup(tx):
            oids = {}
            for name in names:
                record = {
                    "name": name,
                    "available": availability.get(name, 5),
                    "bookings": [],
                }
                oids[name] = yield tx.create(encode_json(record), name=name)
            return oids

        result = runtime.run(setup)
        oids = result.value if hasattr(result, "value") else result[1]
        self.oids = oids
        self.flights = {name: oids[name] for name in AIRLINES}
        self.hotels = {name: oids[name] for name in HOTELS}
        self.cars = {name: oids[name] for name in CAR_COMPANIES}

    def availability(self, name):
        """Current availability of a resource (via a read transaction)."""

        def body(tx):
            record = decode_json((yield tx.read(self.oids[name])))
            return record["available"]

        result = self.runtime.run(body)
        return result.value if hasattr(result, "value") else result[1]

    def bookings(self, name):
        """Current bookings of a resource (via a read transaction)."""

        def body(tx):
            record = decode_json((yield tx.read(self.oids[name])))
            return record["bookings"]

        result = self.runtime.run(body)
        return result.value if hasattr(result, "value") else result[1]


def x_conference(runtime, agency, d1=JUNE_11, d2=JUNE_14):
    """The appendix program, transcribed statement for statement.

    Returns 1 when the activity completes (flight + hotel, car optional),
    0 when it fails (no flight, or no hotel — after compensating the
    flight).
    """
    # Flight: Delta, else United, else American — a contingent chain.
    air = None
    for airline in AIRLINES:
        t = runtime.initiate(
            flight_reservation, args=(agency.flights[airline], d1, d2)
        )
        runtime.begin(t)
        if runtime.commit(t):
            air = airline
            break
    if air is None:
        return 0  # Activity failed

    # Hotel Equator is required.
    t4 = runtime.initiate(
        hotel_reservation, args=(agency.hotels["Equator"], d1, d2)
    )
    runtime.begin(t4)
    if not runtime.commit(t4):
        # Compensate for the flight reservation already made; a
        # compensating transaction must be retried until it commits.
        while True:
            t5 = runtime.initiate(
                cancel_flight_reservation, args=(agency.flights[air], d1, d2)
            )
            runtime.begin(t5)
            if runtime.commit(t5):
                break
        return 0

    # Car rental: National raced against Avis; whichever completes first
    # wins, the loser is aborted.  The task is optional either way.
    t5 = runtime.initiate(
        car_reservation, args=(agency.cars["National"], d1, d2)
    )
    runtime.begin(t5)
    t6 = runtime.initiate(car_reservation, args=(agency.cars["Avis"], d1, d2))
    runtime.begin(t6)
    if runtime.wait(t5):
        runtime.abort(t6)
        runtime.commit(t5)
    else:
        runtime.commit(t6)
    return 1  # Activity has completed successfully


def build_x_conference_spec(agency, d1=JUNE_11, d2=JUNE_14):
    """The same activity as a declarative :class:`WorkflowSpec`."""
    spec = WorkflowSpec(name="x_conference")
    flight = spec.task("flight")
    for airline in AIRLINES:
        flight.alternative(
            flight_reservation,
            args=(agency.flights[airline], d1, d2),
            label=airline,
        )
    hotel = spec.task("hotel", depends_on=("flight",))
    hotel.alternative(
        hotel_reservation, args=(agency.hotels["Equator"], d1, d2),
        label="Equator",
    )
    car = spec.task("car", optional=True, race=True, depends_on=("hotel",))
    for company in CAR_COMPANIES:
        car.alternative(
            car_reservation, args=(agency.cars[company], d1, d2),
            label=company,
        )

    def cancel_any_flight(tx, d1=d1, d2=d2):
        for airline in AIRLINES:
            record = decode_json((yield tx.read(agency.flights[airline])))
            if [d1, d2] in record["bookings"]:
                record["bookings"].remove([d1, d2])
                record["available"] += 1
                yield tx.write(agency.flights[airline], encode_json(record))
                return airline
        return None

    flight.compensate_with(cancel_any_flight)
    return spec
