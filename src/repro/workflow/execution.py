"""Workflow execution state, folded from durable records.

A :class:`WorkflowExecution` is the in-memory image of one running
workflow.  It is *never* authoritative: every transition the durable
engine makes is force-logged first (see :mod:`repro.workflow.records`),
and :func:`fold_execution` rebuilds the exact same image from the log —
that is what lets a crashed site resume in-flight workflows.

The one transition the workflow log cannot answer alone is "did this
step's transaction actually commit?": the attempt record is written
*before* the commit record, so a crash can leave a dangling attempt.
``fold_execution`` therefore takes the set of *winner* tids from the
independent log-replay analysis (:func:`repro.chaos.oracles.analyze_log`
computes the same thing the recovery manager does) and counts a step as
committed iff one of its attempt tids won.  Dangling attempts name loser
tids — recovery already undid them — so the step simply re-runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workflow import records as wrecords
from repro.workflow.engine import TaskStatus


class ExecutionStatus(enum.Enum):
    """Lifecycle of one workflow execution."""

    PENDING = "pending"              # created, nothing durable yet
    RUNNING = "running"              # forward progress in flight
    WAITING_SIGNAL = "waiting_signal"  # parked on an external signal
    COMPLETED = "completed"          # terminal: every required step committed
    COMPENSATED = "compensated"      # terminal: failed, saga fully undone
    CANCELLED = "cancelled"          # terminal: cancel accepted + undone

    @property
    def is_terminal(self):
        return self in _TERMINAL


_TERMINAL = frozenset({
    ExecutionStatus.COMPLETED,
    ExecutionStatus.COMPENSATED,
    ExecutionStatus.CANCELLED,
})


@dataclass
class StepState:
    """What the log says about one step of one execution."""

    name: str
    status: object = None        # TaskStatus or None (not reached)
    alt: str = ""                # winning alternative's label
    tid_value: int = 0           # the committed forward transaction
    attempts: list = field(default_factory=list)  # all attempt tid values
    comp_attempts: list = field(default_factory=list)

    @property
    def committed(self):
        return self.status in (TaskStatus.COMMITTED, TaskStatus.COMPENSATED)


@dataclass
class WorkflowExecution:
    """The folded image of one execution (see module docstring)."""

    wid: int
    definition: str = ""
    status: ExecutionStatus = ExecutionStatus.PENDING
    steps: dict = field(default_factory=dict)      # name -> StepState
    signals: dict = field(default_factory=dict)    # name -> payload
    waiting_step: str = ""
    waiting_signal: str = ""
    wait_timeout: object = None
    wait_on_timeout: str = "fail"
    outcome: str = ""                              # finished record's verdict
    cancel_requested: bool = False
    context: dict = field(default_factory=dict)

    def step(self, name):
        if name not in self.steps:
            self.steps[name] = StepState(name=name)
        return self.steps[name]

    def committed_steps(self):
        """Names of steps whose forward work committed, in commit order."""
        return [
            state.name
            for state in self.steps.values()
            if state.status is TaskStatus.COMMITTED
        ]

    def status_of(self, step_name):
        state = self.steps.get(step_name)
        return None if state is None else state.status


def fold_execution(wid, log_records, winners):
    """Rebuild one execution from durable records.

    ``log_records`` is the full durable record sequence (any record
    types; non-workflow and other-wid records are skipped).  ``winners``
    is the set of committed tid *values* per the log-replay analysis.
    """
    execution = WorkflowExecution(wid=wid)
    for record in wrecords.workflow_records(log_records, wid=wid):
        _apply(execution, record.kind, wrecords.decode_payload(record.payload),
               winners)
    return execution


def fold_all(log_records, winners):
    """Rebuild every execution present in ``log_records`` (wid -> image)."""
    executions = {}
    for record in wrecords.workflow_records(log_records):
        if record.wid not in executions:
            executions[record.wid] = WorkflowExecution(wid=record.wid)
        _apply(
            executions[record.wid],
            record.kind,
            wrecords.decode_payload(record.payload),
            winners,
        )
    return executions


def _apply(execution, kind, payload, winners):
    if kind == wrecords.STARTED:
        execution.definition = payload.get("definition", "")
        execution.context = payload.get("context", {}) or {}
        execution.status = ExecutionStatus.RUNNING
    elif kind == wrecords.STEP_ATTEMPT:
        state = execution.step(payload["step"])
        tid_value = payload.get("tid", 0)
        state.attempts.append(tid_value)
        if tid_value in winners:
            state.status = TaskStatus.COMMITTED
            state.alt = payload.get("alt", "")
            state.tid_value = tid_value
        # A loser attempt is a crash shadow: recovery undid the
        # transaction, so the step stays unreached and will re-run.
    elif kind == wrecords.STEP_FAILED:
        execution.step(payload["step"]).status = TaskStatus.FAILED
    elif kind == wrecords.STEP_SKIPPED:
        execution.step(payload["step"]).status = TaskStatus.SKIPPED
    elif kind == wrecords.SIGNAL_WAIT:
        execution.status = ExecutionStatus.WAITING_SIGNAL
        execution.waiting_step = payload["step"]
        execution.waiting_signal = payload["signal"]
        execution.wait_timeout = payload.get("timeout")
        execution.wait_on_timeout = payload.get("on_timeout", "fail")
    elif kind == wrecords.SIGNAL:
        execution.signals[payload["name"]] = payload.get("payload")
        if execution.waiting_signal == payload["name"]:
            _clear_wait(execution)
    elif kind == wrecords.SIGNAL_TIMEOUT:
        if execution.waiting_step == payload.get("step"):
            _clear_wait(execution)
    elif kind == wrecords.COMP_ATTEMPT:
        state = execution.step(payload["step"])
        tid_value = payload.get("tid", 0)
        state.comp_attempts.append(tid_value)
        if tid_value in winners:
            state.status = TaskStatus.COMPENSATED
    elif kind == wrecords.CANCELLED:
        execution.cancel_requested = True
        if not execution.status.is_terminal:
            execution.status = ExecutionStatus.RUNNING
            _clear_wait(execution)
    elif kind == wrecords.FINISHED:
        execution.outcome = payload.get("outcome", "")
        execution.status = {
            wrecords.OUTCOME_COMPLETED: ExecutionStatus.COMPLETED,
            wrecords.OUTCOME_COMPENSATED: ExecutionStatus.COMPENSATED,
            wrecords.OUTCOME_CANCELLED: ExecutionStatus.CANCELLED,
        }.get(payload.get("outcome"), ExecutionStatus.COMPLETED)


def _clear_wait(execution):
    if not execution.status.is_terminal:
        execution.status = ExecutionStatus.RUNNING
    execution.waiting_step = ""
    execution.waiting_signal = ""
    execution.wait_timeout = None
    execution.wait_on_timeout = "fail"
