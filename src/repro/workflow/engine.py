"""The workflow engine.

Executes a :class:`~repro.workflow.spec.WorkflowSpec` over a runtime using
the section 3 translation schemes:

* sequential alternatives → the contingent scheme (try in order until one
  commits);
* racing alternatives → the appendix's car-rental pattern (begin all,
  first to complete wins, losers aborted, winner committed);
* required-task failure → backward recovery: compensations of committed
  tasks, in reverse order, retried until they commit (the saga
  discipline);
* optional-task failure → the workflow proceeds.

The engine needs only the paper-style driver API (``initiate``, ``begin``,
``commit``, ``wait``, ``abort``) plus ``poll``, so it runs on either
runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import AssetError, RetryExhausted, TransientError


class TaskStatus(enum.Enum):
    """Terminal status of one workflow task."""

    COMMITTED = "committed"
    FAILED = "failed"
    SKIPPED = "skipped"
    COMPENSATED = "compensated"


@dataclass
class TaskOutcome:
    """What happened to one task."""

    name: str
    status: TaskStatus
    label: str = ""  # which alternative won
    value: object = None
    tid: object = None


@dataclass
class WorkflowResult:
    """Outcome of a workflow execution."""

    name: str
    success: bool
    outcomes: dict = field(default_factory=dict)
    compensation_order: list = field(default_factory=list)

    def __bool__(self):
        return self.success

    def status_of(self, task_name):
        """The :class:`TaskStatus` of ``task_name``."""
        return self.outcomes[task_name].status


class WorkflowEngine:
    """Runs workflow specs over a transaction runtime.

    With ``parallel=True``, tasks whose dependencies are satisfied run
    *concurrently* (alternatives stay ordered within each task); the
    default executes tasks strictly in declaration order.  On success the
    two modes are outcome-identical.  On failure they can differ for
    tasks *independent* of the failing one: the sequential engine never
    starts them (SKIPPED), while the parallel engine may have already
    committed them — and then compensates those that carry a
    compensation.  The equivalence boundary is pinned down by the
    workflow property suite.
    """

    def __init__(self, runtime, max_compensation_retries=100,
                 max_idle_polls=1000, parallel=False, retry=None,
                 watchdog=None):
        self.runtime = runtime
        self.max_compensation_retries = max_compensation_retries
        self.max_idle_polls = max_idle_polls
        self.parallel = parallel
        # A repro.resilience.RetryPolicy for *transient* commit failures
        # (injected device faults) on sequential-alternative and
        # compensation commits.  ``None`` keeps classic propagate-on-error
        # behavior; an exhausted budget on an alternative moves to the
        # next alternative, on a compensation it raises RetryExhausted.
        self.retry = retry
        # Race losers whose abort kept failing.  They are recorded here
        # and handed to the watchdog (self.watchdog, or the runtime's if
        # resilience is installed) as orphans instead of leaking.
        self.watchdog = watchdog
        self.orphaned = []

    def _commit_step(self, tid, op):
        """Commit one workflow step under the engine's retry policy."""
        if self.retry is None:
            return self.runtime.commit(tid)
        return self.retry.run(
            lambda: self.runtime.commit(tid), op=op, tid=tid
        )

    def _abort_loser(self, tid, task_name):
        """Abort a race loser without ever leaking it.

        A transient abort failure is retried under the engine's retry
        policy; if the budget runs out (or no policy is wired) the loser
        is recorded as an orphan and handed to the watchdog with an
        already-expired deadline, so the next scan reaps it rather than
        letting a live transaction sit on its locks forever.
        """
        try:
            if self.retry is None:
                self.runtime.abort(tid)
            else:
                self.retry.run(
                    lambda: self.runtime.abort(tid),
                    op=f"workflow.{task_name}.abort_loser",
                    tid=tid,
                )
        except (TransientError, RetryExhausted):
            self.orphaned.append(tid)
            watchdog = self.watchdog
            if watchdog is None:
                watchdog = getattr(self.runtime, "watchdog", None)
            if watchdog is not None:
                watchdog.table.set_deadline(tid, budget=0)

    # -- task strategies -----------------------------------------------------

    def _try_sequential(self, task):
        """Contingent semantics over the task's alternatives."""
        for alternative in task.alternatives:
            tid = self.runtime.initiate(alternative.body, args=alternative.args)
            if not tid or not self.runtime.begin(tid):
                continue
            try:
                committed = self._commit_step(
                    tid, op=f"workflow.{task.name}.{alternative.label}"
                )
            except RetryExhausted:
                continue  # budget spent on this alternative; try the next
            if committed:
                return TaskOutcome(
                    name=task.name,
                    status=TaskStatus.COMMITTED,
                    label=alternative.label,
                    value=self.runtime.result_of(tid),
                    tid=tid,
                )
        return TaskOutcome(name=task.name, status=TaskStatus.FAILED)

    def _try_race(self, task):
        """Race all alternatives; first completion wins, losers abort."""
        entries = []
        for alternative in task.alternatives:
            tid = self.runtime.initiate(alternative.body, args=alternative.args)
            if tid and self.runtime.begin(tid):
                entries.append((tid, alternative))
        manager = self.runtime.manager
        idle = 0
        while entries:
            winner = None
            still_running = []
            for tid, alternative in entries:
                outcome = manager.wait_outcome(tid)
                if outcome is True and winner is None and not alternative.pacer:
                    winner = (tid, alternative)
                elif outcome is None:
                    still_running.append((tid, alternative))
                elif outcome is True:
                    # Completed but barred from winning: a pacer, or a
                    # second finisher.  Pure loser either way.
                    self._abort_loser(tid, task.name)
                # outcome False: that racer aborted; drop it.
            if winner is not None:
                tid, alternative = winner
                for other_tid, __ in still_running:
                    self._abort_loser(other_tid, task.name)
                if self.runtime.commit(tid):
                    return TaskOutcome(
                        name=task.name,
                        status=TaskStatus.COMMITTED,
                        label=alternative.label,
                        value=self.runtime.result_of(tid),
                        tid=tid,
                    )
                entries = []  # winner failed to commit: everyone is gone
                break
            entries = still_running
            if entries:
                if not self.runtime.poll():
                    idle += 1
                    if idle > self.max_idle_polls:
                        raise AssetError(
                            f"race in task {task.name!r} made no progress"
                        )
        return TaskOutcome(name=task.name, status=TaskStatus.FAILED)

    # -- the engine ---------------------------------------------------------------

    def execute(self, spec):
        """Run ``spec``; returns a :class:`WorkflowResult`."""
        spec.validate()
        if self.parallel:
            return self._execute_parallel(spec)
        result = WorkflowResult(name=spec.name, success=True)
        committed = []  # (task, outcome) pairs, commit order

        for task in spec.ordered():
            unmet = [
                dep
                for dep in task.depends_on
                if result.outcomes[dep].status is not TaskStatus.COMMITTED
            ]
            if unmet:
                outcome = TaskOutcome(
                    name=task.name, status=TaskStatus.SKIPPED
                )
                result.outcomes[task.name] = outcome
                if not task.optional:
                    return self._fail(spec, result, committed)
                continue

            strategy = self._try_race if task.race else self._try_sequential
            outcome = strategy(task)
            result.outcomes[task.name] = outcome

            if outcome.status is TaskStatus.COMMITTED:
                committed.append((task, outcome))
            elif not task.optional:
                return self._fail(spec, result, committed)
        return result

    # -- parallel execution ----------------------------------------------------

    def _execute_parallel(self, spec):
        """Overlap independent tasks; see the class docstring.

        Each task is a little state machine: WAITING (dependencies
        unresolved) → RUNNING (an alternative's transaction is live) →
        COMMITTED / FAILED / SKIPPED.  One driver loop advances every
        task, polling the runtime when nothing transitions.
        """
        manager = self.runtime.manager
        result = WorkflowResult(name=spec.name, success=True)
        committed = []  # (task, outcome) in commit order
        runs = {
            task.name: {
                "task": task, "state": "waiting", "alt": 0, "tids": [],
            }
            for task in spec
        }

        def start_next_alternative(run):
            task = run["task"]
            if task.race:
                entrants = list(task.alternatives)  # race: begin them all
            else:
                entrants = [task.alternatives[run["alt"]]]
            run["tids"] = []
            for alternative in entrants:
                tid = self.runtime.initiate(
                    alternative.body, args=alternative.args
                )
                if tid and self.runtime.begin(tid):
                    run["tids"].append((tid, alternative))
            run["state"] = "running" if run["tids"] else "failed"

        def settle(run):
            """Advance a running task; True when its state changed."""
            task = run["task"]
            still = []
            winner = None
            for tid, alternative in run["tids"]:
                ready = manager.wait_outcome(tid)
                if ready is True and winner is None and not alternative.pacer:
                    winner = (tid, alternative)
                elif ready is None:
                    still.append((tid, alternative))
                elif ready is True:
                    # Completed but barred from winning (pacer / second
                    # finisher): pure loser, clean it up now.
                    self._abort_loser(tid, task.name)
                # ready False: that alternative aborted; drop it.
            if winner is not None:
                tid, alternative = winner
                for other_tid, __ in still:
                    self._abort_loser(other_tid, task.name)
                outcome_obj = manager.try_commit(tid)
                if not outcome_obj.is_final:
                    return False  # commit blocked: try again next round
                if outcome_obj:
                    run["state"] = "committed"
                    run["outcome"] = TaskOutcome(
                        name=task.name,
                        status=TaskStatus.COMMITTED,
                        label=alternative.label,
                        value=self.runtime.result_of(tid),
                        tid=tid,
                    )
                    return True
                still = []  # the winner aborted at commit time
            run["tids"] = still
            if still:
                return False
            # Everyone in flight died: next alternative, or fail.
            if not task.race and run["alt"] + 1 < len(task.alternatives):
                run["alt"] += 1
                start_next_alternative(run)
                return True
            run["state"] = "failed"
            return True

        idle = 0
        abandoned = False
        while True:
            progressed = False
            for run in runs.values():
                task = run["task"]
                if run["state"] == "waiting":
                    dep_states = [runs[d]["state"] for d in task.depends_on]
                    if all(state == "committed" for state in dep_states):
                        start_next_alternative(run)
                        progressed = True
                    elif any(
                        state in ("failed", "skipped")
                        for state in dep_states
                    ):
                        run["state"] = "skipped"
                        progressed = True
                elif run["state"] == "running":
                    progressed |= settle(run)
            pending = [
                r for r in runs.values()
                if r["state"] in ("waiting", "running")
            ]
            required_failure = any(
                r["state"] in ("failed", "skipped")
                and not r["task"].optional
                for r in runs.values()
            )
            if required_failure:
                abandoned = True
                for run in pending:
                    for tid, __ in run.get("tids", ()):
                        self._abort_loser(tid, run["task"].name)
                    if run["state"] in ("waiting", "running"):
                        run["state"] = "skipped"
                break
            if not pending:
                break
            if not progressed:
                if not self.runtime.poll():
                    idle += 1
                    if idle > self.max_idle_polls:
                        raise AssetError(
                            f"parallel workflow {spec.name!r} stalled"
                        )

        # Assemble outcomes in declaration order; track commit order for
        # compensation by the order tasks reached "committed".
        for task in spec:
            run = runs[task.name]
            if run["state"] == "committed":
                result.outcomes[task.name] = run["outcome"]
                committed.append((task, run["outcome"]))
            elif run["state"] == "failed":
                result.outcomes[task.name] = TaskOutcome(
                    name=task.name, status=TaskStatus.FAILED
                )
            else:
                result.outcomes[task.name] = TaskOutcome(
                    name=task.name, status=TaskStatus.SKIPPED
                )
        if abandoned:
            self._compensate(result, committed)
            result.success = False
        return result

    def _fail(self, spec, result, committed):
        """Abandon the workflow: compensate, and mark untried tasks."""
        self._compensate(result, committed)
        for task in spec:
            if task.name not in result.outcomes:
                result.outcomes[task.name] = TaskOutcome(
                    name=task.name, status=TaskStatus.SKIPPED
                )
        result.success = False
        return result

    def _compensate(self, result, committed):
        """Backward recovery: undo committed tasks, newest first."""
        for task, outcome in reversed(committed):
            body, args = task.compensation_for(outcome.label)
            if body is None:
                continue
            attempts = 0
            while True:
                attempts += 1
                if attempts > self.max_compensation_retries:
                    raise AssetError(
                        f"compensation of task {task.name!r} failed"
                        f" {self.max_compensation_retries} times"
                    )
                ct = self.runtime.initiate(body, args=args)
                if not ct:
                    continue
                self.runtime.begin(ct)
                if self._commit_step(ct, op=f"workflow.c.{task.name}"):
                    break
            outcome.status = TaskStatus.COMPENSATED
            result.compensation_order.append(task.name)
