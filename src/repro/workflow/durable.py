"""The durable workflow engine (v2): executions that survive crashes.

:class:`DurableWorkflowEngine` runs :class:`~repro.workflow.definition
.WorkflowDefinition`\\ s with the same section 3 translation schemes as
the in-memory engine, but every orchestration transition is force-logged
through the WAL first (:mod:`repro.workflow.records`), so a site crash
mid-workflow loses nothing: restart recovery replays the data log,
:meth:`DurableWorkflowEngine.recover` folds the workflow records back
into :class:`~repro.workflow.execution.WorkflowExecution` images, and
:meth:`resume` continues each in-flight execution from its last durable
step.

The protocol is ``start`` / ``resume`` / ``cancel`` / ``signal`` /
``status``:

* ``start`` makes the execution durable and drives it until it reaches a
  terminal status or parks on a signal wait;
* ``signal`` durably delivers a named signal (and, by default, resumes a
  parked execution);
* ``resume`` continues forward progress — after recovery, or after a
  caller chose ``signal(..., resume=False)``;
* ``cancel`` durably accepts a cancel request, compensates every
  committed step (saga discipline), and finishes ``cancelled``;
* ``status`` reports the :class:`~repro.workflow.execution
  .ExecutionStatus`.

Crash-consistency contract (the part worth reading twice): a forward
step logs a forced ``step_attempt`` record *before* committing its
transaction, and recovery counts the step as committed **iff one of its
attempt tids is a winner of the data-log replay**.  There is no separate
"step committed" marker — a marker would need to be atomic with the
commit record, and it cannot be; deriving the answer from the commit
record itself closes that window.  A crash between attempt and commit
leaves a dangling attempt naming a loser tid; restart recovery undoes
that transaction's effects, the fold ignores the attempt, and resume
re-issues the step from scratch.  Compensations follow the same
discipline with ``comp_attempt`` records.

Signal-wait timers are armed on an engine-owned
:class:`~repro.resilience.deadlines.DeadlineTable` over the runtime's
logical clock, and *re-armed with their full budget* on recovery (the
logical clock restarts with the process; a fresh budget is the
conservative reading of "the timer survives the crash").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.oracles import analyze_log
from repro.common.clock import LogicalClock
from repro.common.errors import AssetError, RetryExhausted, TransientError
from repro.resilience.deadlines import DeadlineTable
from repro.workflow import records as wrecords
from repro.workflow.engine import TaskStatus
from repro.workflow.execution import (
    ExecutionStatus,
    fold_all,
)


@dataclass(frozen=True)
class _WaitToken:
    """Deadline-table key for one execution's signal-wait timer."""

    wid: int

    @property
    def value(self):
        # DeadlineTable orders its keys by .value; reuse the wid.
        return self.wid


class ExecutionLeaseBoard:
    """Shared ownership leases over durable workflow executions.

    One board per storage stack, shared by every engine instance that
    can drive the stack's executions.  Whoever is driving an execution
    heartbeats its lease (every durable record the engine writes counts
    as a heartbeat — progress *is* liveness); a rival engine instance
    may only claim the execution once that lease has lapsed, which is
    the workflow-level analogue of the cluster's coordinator lease: a
    crashed or wedged owner loses the execution to whoever calls
    ``recover()``/``resume()`` next, and a live owner cannot be usurped.
    """

    def __init__(self, clock):
        self.table = DeadlineTable(clock)
        self._owners = {}  # wid -> engine owner name

    def claim(self, wid, owner, ttl):
        """Claim (or refresh) ownership; False while a rival lease lives."""
        current = self._owners.get(wid)
        if (
            current is not None
            and current != owner
            and self.table.lease_live(_WaitToken(wid))
        ):
            return False
        self._owners[wid] = owner
        self.table.grant_lease(_WaitToken(wid), ttl)
        return True

    def heartbeat(self, wid, owner):
        """Refresh the lease; False if ``owner`` no longer holds it."""
        if self._owners.get(wid) != owner:
            return False
        return self.table.heartbeat(_WaitToken(wid))

    def owner_of(self, wid):
        return self._owners.get(wid)

    def live(self, wid):
        return self.table.lease_live(_WaitToken(wid))

    def release(self, wid, owner):
        """Let the lease go (terminal execution); no-op for non-owners.

        The owner *name* stays on the board with a dead lease: a later
        claimant can tell it is taking over from someone (and must
        re-read the durable truth) rather than claiming fresh.
        """
        if self._owners.get(wid) == owner:
            self.table.forget(_WaitToken(wid))


class DurableWorkflowEngine:
    """Runs workflow definitions with WAL-persisted execution state."""

    def __init__(self, runtime, registry, *, retry=None, watchdog=None,
                 metrics=None, on_commit=None, max_compensation_retries=100,
                 max_idle_polls=1000, owner="engine", leases=None,
                 execution_lease=32):
        self.runtime = runtime
        self.registry = registry
        self.storage = runtime.manager.storage
        self.retry = retry
        self.watchdog = watchdog
        self.metrics = metrics
        # Execution-ownership leases (None = single-engine deployment,
        # no fencing).  ``owner`` names this instance on the shared
        # board; ``execution_lease`` is the heartbeat budget in ticks.
        self.owner = owner
        self.leases = leases
        self.execution_lease = execution_lease
        # Called with the tid of every step/compensation transaction the
        # engine successfully committed — the chaos harness's truthful
        # acknowledgement hook.
        self.on_commit = on_commit
        self.max_compensation_retries = max_compensation_retries
        self.max_idle_polls = max_idle_polls
        clock = getattr(runtime.manager, "clock", None)
        self.clock = clock if clock is not None else LogicalClock()
        # Engine-owned timer table: workflow wait tokens are not
        # transactions, so they must not share the resilience kit's
        # table (the watchdog would prune them as unknown tids).
        self.deadlines = DeadlineTable(self.clock)
        self.orphaned = []  # race losers whose abort kept failing
        self.stats = {
            "started": 0,
            "completed": 0,
            "compensated": 0,
            "cancelled": 0,
            "recovered": 0,
            "steps_committed": 0,
            "compensations": 0,
            "signals": 0,
            "timeouts": 0,
        }
        self.timeline = []  # per-execution trace rows (obs export)
        # Called with (wid, kind, fields) after every durable workflow
        # record — the seam the observability kit hangs spans off.
        self.on_record = None
        self._executions = {}
        self._next_wid = 1
        for record in wrecords.workflow_records(self.storage.log.records()):
            self._next_wid = max(self._next_wid, record.wid + 1)

    # -- bookkeeping -------------------------------------------------------

    def _count(self, key, amount=1):
        self.stats[key] += amount
        if self.metrics is not None:
            self.metrics.inc(f"workflow.{key}", amount)

    def _claim(self, wid):
        """Take (or refresh) the execution's ownership lease, or refuse.

        Raises when another engine instance holds a live lease — the
        double-resume guard: two engines recovering the same storage
        cannot both drive one execution.  A successful claim that
        *takes over* from another owner re-folds the execution from the
        durable log first: the previous owner may have progressed past
        this engine's in-memory image before going quiet.
        """
        if self.leases is None:
            return
        previous = self.leases.owner_of(wid)
        if not self.leases.claim(wid, self.owner, self.execution_lease):
            raise AssetError(
                f"wid={wid} is owned by {self.leases.owner_of(wid)!r}"
                f" under a live lease; this engine ({self.owner!r}) must"
                f" wait for it to lapse"
            )
        if previous is not None and previous != self.owner:
            self._refold(wid)

    def _refold(self, wid):
        """Replace the in-memory image with the durable log's truth."""
        log_records = list(self.storage.log.records())
        analysis = analyze_log(log_records)
        winners = {getattr(tid, "value", tid) for tid in analysis.winners}
        execution = fold_all(log_records, winners).get(wid)
        if execution is not None:
            self._executions[wid] = execution

    def _release(self, wid):
        if self.leases is not None:
            self.leases.release(wid, self.owner)

    def _log(self, wid, kind, fields):
        self.storage.log_workflow(
            wid, kind, payload=wrecords.encode_payload(fields)
        )
        if self.leases is not None:
            # Durable progress doubles as the ownership heartbeat.
            self.leases.heartbeat(wid, self.owner)
        self.timeline.append(
            {"tick": self.clock.peek(), "wid": wid, "kind": kind, **fields}
        )
        if self.on_record is not None:
            self.on_record(wid, kind, fields)

    def _require(self, wid):
        if wid not in self._executions:
            raise AssetError(f"unknown workflow execution: wid={wid}")
        return self._executions[wid]

    def _commit_step(self, tid, op):
        if self.retry is None:
            return self.runtime.commit(tid)
        return self.retry.run(
            lambda: self.runtime.commit(tid), op=op, tid=tid
        )

    def _abort_loser(self, tid, step_name):
        """Abort a race loser; exhausted retries hand it to the watchdog."""
        try:
            if self.retry is None:
                self.runtime.abort(tid)
            else:
                self.retry.run(
                    lambda: self.runtime.abort(tid),
                    op=f"workflow.{step_name}.abort_loser",
                    tid=tid,
                )
        except (TransientError, RetryExhausted):
            self.orphaned.append(tid)
            watchdog = self.watchdog
            if watchdog is None:
                watchdog = getattr(self.runtime, "watchdog", None)
            if watchdog is not None:
                watchdog.table.set_deadline(tid, budget=0)

    # -- the protocol ------------------------------------------------------

    def start(self, definition_name, wid=None, context=None):
        """Create a durable execution and drive it; returns its wid."""
        self.registry.get(definition_name)  # fail fast on unknown names
        if wid is None:
            wid = self._next_wid
        if wid in self._executions:
            raise AssetError(f"workflow execution wid={wid} already exists")
        self._next_wid = max(self._next_wid, wid + 1)
        self._claim(wid)
        from repro.workflow.execution import WorkflowExecution

        execution = WorkflowExecution(
            wid=wid,
            definition=definition_name,
            context=dict(context or {}),
        )
        self._executions[wid] = execution
        self._log(wid, wrecords.STARTED, {
            "definition": definition_name,
            "context": execution.context,
        })
        execution.status = ExecutionStatus.RUNNING
        self._count("started")
        self._drive(wid)
        return wid

    def status(self, wid):
        """The execution's :class:`ExecutionStatus`."""
        return self._require(wid).status

    def execution(self, wid):
        """The folded :class:`WorkflowExecution` image."""
        return self._require(wid)

    def executions(self):
        """wid → execution, every execution this engine knows about."""
        return dict(self._executions)

    def resume(self, wid):
        """Continue forward progress; no-op on terminal or parked runs."""
        execution = self._require(wid)
        if execution.status.is_terminal:
            return execution.status
        if execution.status is ExecutionStatus.WAITING_SIGNAL:
            return execution.status
        return self._drive(wid)

    def signal(self, wid, name, payload=None, resume=True):
        """Durably deliver signal ``name``; resumes a matching wait."""
        execution = self._require(wid)
        if execution.status.is_terminal:
            return execution.status
        self._claim(wid)
        execution = self._require(wid)  # _claim may have re-folded
        if execution.status.is_terminal:
            return execution.status
        self._log(wid, wrecords.SIGNAL, {"name": name, "payload": payload})
        execution.signals[name] = payload
        self._count("signals")
        if (
            execution.status is ExecutionStatus.WAITING_SIGNAL
            and execution.waiting_signal == name
        ):
            self._unpark(execution)
            if resume:
                return self._drive(wid)
        return execution.status

    def cancel(self, wid):
        """Durably accept a cancel: compensate and finish ``cancelled``."""
        execution = self._require(wid)
        if execution.status.is_terminal:
            return execution.status
        self._claim(wid)
        execution = self._require(wid)  # _claim may have re-folded
        if execution.status.is_terminal:
            return execution.status
        self._log(wid, wrecords.CANCELLED, {})
        execution.cancel_requested = True
        if execution.status is ExecutionStatus.WAITING_SIGNAL:
            self._unpark(execution)
        return self._finish_backward(execution, wrecords.OUTCOME_CANCELLED)

    def expire_wait(self, wid):
        """Fire a parked execution's wait timer (deterministic time travel).

        Advances the logical clock to the armed deadline — the same
        stall-rescue jump the watchdog performs — then applies the
        wait's ``on_timeout`` policy.
        """
        execution = self._require(wid)
        if execution.status is not ExecutionStatus.WAITING_SIGNAL:
            return execution.status
        if execution.wait_timeout is None:
            raise AssetError(
                f"wid={wid} waits on {execution.waiting_signal!r} with no"
                " timeout; deliver the signal or cancel"
            )
        self._claim(wid)
        execution = self._require(wid)  # _claim may have re-folded
        if execution.status is not ExecutionStatus.WAITING_SIGNAL:
            return execution.status
        token = _WaitToken(wid)
        deadline = self.deadlines.deadline_of(token)
        if deadline is not None:
            self.clock.advance_to(deadline)
        step = execution.waiting_step
        self._log(wid, wrecords.SIGNAL_TIMEOUT, {
            "step": step, "signal": execution.waiting_signal,
        })
        on_timeout = execution.wait_on_timeout
        self._unpark(execution)
        self._count("timeouts")
        definition = self.registry.get(execution.definition)
        task = next(t for t in definition.spec if t.name == step)
        if on_timeout == "skip":
            self._log(wid, wrecords.STEP_SKIPPED, {"step": step})
            execution.step(step).status = TaskStatus.SKIPPED
            return self._drive(wid)
        self._log(wid, wrecords.STEP_FAILED, {"step": step})
        execution.step(step).status = TaskStatus.FAILED
        if task.optional:
            return self._drive(wid)
        return self._finish_backward(execution, wrecords.OUTCOME_COMPENSATED)

    # -- recovery ----------------------------------------------------------

    def recover(self):
        """Rebuild executions from the durable log; returns in-flight wids.

        Call after storage restart recovery has run and the site's
        definitions are re-registered.  Parked executions get their wait
        timers re-armed with the full budget; callers then drive each
        returned wid with :meth:`resume` / :meth:`signal` /
        :meth:`expire_wait`.
        """
        log_records = list(self.storage.log.records())
        analysis = analyze_log(log_records)
        winners = {getattr(tid, "value", tid) for tid in analysis.winners}
        recovered = []
        for wid, execution in sorted(fold_all(log_records, winners).items()):
            self._executions[wid] = execution
            self._next_wid = max(self._next_wid, wid + 1)
            if execution.status.is_terminal:
                continue
            if execution.definition:
                self.registry.get(execution.definition)  # must be present
            if (
                execution.status is ExecutionStatus.WAITING_SIGNAL
                and execution.wait_timeout is not None
            ):
                self.deadlines.set_deadline(
                    _WaitToken(wid), budget=execution.wait_timeout
                )
            self._count("recovered")
            recovered.append(wid)
        return recovered

    # -- driving -----------------------------------------------------------

    def _drive(self, wid):
        """Run forward from the last durable step; park, finish, or fail."""
        self._claim(wid)
        execution = self._executions[wid]
        if execution.status.is_terminal:
            return execution.status
        if execution.cancel_requested:
            # A durably accepted cancel interrupted by a crash must
            # resume as a cancel: never make forward progress again.
            return self._finish_backward(execution, wrecords.OUTCOME_CANCELLED)
        definition = self.registry.get(execution.definition)
        for task in definition.spec.ordered():
            existing = execution.status_of(task.name)
            if existing in (TaskStatus.COMMITTED, TaskStatus.COMPENSATED,
                            TaskStatus.SKIPPED):
                continue
            if existing is TaskStatus.FAILED:
                if task.optional:
                    continue
                return self._finish_backward(
                    execution, wrecords.OUTCOME_COMPENSATED
                )
            unmet = [
                dep for dep in task.depends_on
                if execution.status_of(dep) is not TaskStatus.COMMITTED
            ]
            if unmet:
                # A required step with unmet dependencies fails the
                # workflow (durably, so a resume after the crash agrees).
                if task.optional:
                    self._log(wid, wrecords.STEP_SKIPPED, {"step": task.name})
                    execution.step(task.name).status = TaskStatus.SKIPPED
                    continue
                self._log(wid, wrecords.STEP_FAILED, {"step": task.name})
                execution.step(task.name).status = TaskStatus.FAILED
                return self._finish_backward(
                    execution, wrecords.OUTCOME_COMPENSATED
                )
            wait = definition.waits.get(task.name)
            if wait is not None and wait.signal not in execution.signals:
                self._park(execution, task.name, wait)
                return execution.status
            status = self._run_step(execution, task)
            if status is TaskStatus.COMMITTED or task.optional:
                continue
            return self._finish_backward(
                execution, wrecords.OUTCOME_COMPENSATED
            )
        self._log(wid, wrecords.FINISHED, {
            "outcome": wrecords.OUTCOME_COMPLETED,
        })
        execution.status = ExecutionStatus.COMPLETED
        self._count("completed")
        self._release(wid)
        return execution.status

    def _park(self, execution, step, wait):
        self._log(execution.wid, wrecords.SIGNAL_WAIT, {
            "step": step,
            "signal": wait.signal,
            "timeout": wait.timeout,
            "on_timeout": wait.on_timeout,
        })
        execution.status = ExecutionStatus.WAITING_SIGNAL
        execution.waiting_step = step
        execution.waiting_signal = wait.signal
        execution.wait_timeout = wait.timeout
        execution.wait_on_timeout = wait.on_timeout
        if wait.timeout is not None:
            self.deadlines.set_deadline(
                _WaitToken(execution.wid), budget=wait.timeout
            )

    def _unpark(self, execution):
        self.deadlines.forget(_WaitToken(execution.wid))
        execution.status = ExecutionStatus.RUNNING
        execution.waiting_step = ""
        execution.waiting_signal = ""
        execution.wait_timeout = None
        execution.wait_on_timeout = "fail"

    # -- step execution ----------------------------------------------------

    def _run_step(self, execution, task):
        if task.race:
            status = self._run_race(execution, task)
        else:
            status = self._run_sequential(execution, task)
        if status is not TaskStatus.COMMITTED:
            self._log(execution.wid, wrecords.STEP_FAILED, {
                "step": task.name,
            })
            execution.step(task.name).status = TaskStatus.FAILED
        return status

    def _note_commit(self, execution, task, alternative, tid):
        state = execution.step(task.name)
        state.status = TaskStatus.COMMITTED
        state.alt = alternative.label
        state.tid_value = tid.value
        self._count("steps_committed")
        if self.on_commit is not None:
            self.on_commit(tid)

    def _attempt(self, wid, task, alternative, tid):
        # Forced to the log BEFORE the commit: see the module docstring.
        self._log(wid, wrecords.STEP_ATTEMPT, {
            "step": task.name,
            "alt": alternative.label,
            "tid": tid.value,
        })

    def _run_sequential(self, execution, task):
        """Contingent semantics with durable attempt records."""
        for alternative in task.alternatives:
            tid = self.runtime.initiate(
                alternative.body, args=alternative.args
            )
            if not tid or not self.runtime.begin(tid):
                continue
            self._attempt(execution.wid, task, alternative, tid)
            try:
                committed = self._commit_step(
                    tid, op=f"workflow.{task.name}.{alternative.label}"
                )
            except RetryExhausted:
                continue
            if committed:
                self._note_commit(execution, task, alternative, tid)
                return TaskStatus.COMMITTED
        return TaskStatus.FAILED

    def _run_race(self, execution, task):
        """First-completion-wins with durable attempt records."""
        entries = []
        for alternative in task.alternatives:
            tid = self.runtime.initiate(
                alternative.body, args=alternative.args
            )
            if tid and self.runtime.begin(tid):
                entries.append((tid, alternative))
        manager = self.runtime.manager
        idle = 0
        while entries:
            winner = None
            still_running = []
            for tid, alternative in entries:
                outcome = manager.wait_outcome(tid)
                if (
                    outcome is True
                    and winner is None
                    and not alternative.pacer
                ):
                    winner = (tid, alternative)
                elif outcome is None:
                    still_running.append((tid, alternative))
                elif outcome is True:
                    self._abort_loser(tid, task.name)
            if winner is not None:
                tid, alternative = winner
                for other_tid, __ in still_running:
                    self._abort_loser(other_tid, task.name)
                self._attempt(execution.wid, task, alternative, tid)
                if self.runtime.commit(tid):
                    self._note_commit(execution, task, alternative, tid)
                    return TaskStatus.COMMITTED
                entries = []
                break
            entries = still_running
            if entries:
                if not self.runtime.poll():
                    idle += 1
                    if idle > self.max_idle_polls:
                        raise AssetError(
                            f"race in step {task.name!r} made no progress"
                        )
        return TaskStatus.FAILED

    # -- backward recovery -------------------------------------------------

    def _finish_backward(self, execution, outcome):
        """Compensate every committed step (newest first), then finish."""
        definition = self.registry.get(execution.definition)
        order = [task.name for task in definition.spec.ordered()]
        by_name = {task.name: task for task in definition.spec}
        committed = [
            name for name in order
            if execution.status_of(name) is TaskStatus.COMMITTED
        ]
        for name in reversed(committed):
            task = by_name[name]
            state = execution.steps[name]
            body, args = task.compensation_for(state.alt)
            if body is None:
                continue
            attempts = 0
            while True:
                attempts += 1
                if attempts > self.max_compensation_retries:
                    raise AssetError(
                        f"compensation of step {name!r} failed"
                        f" {self.max_compensation_retries} times"
                    )
                ct = self.runtime.initiate(body, args=args)
                if not ct:
                    continue
                self.runtime.begin(ct)
                self._log(execution.wid, wrecords.COMP_ATTEMPT, {
                    "step": name, "tid": ct.value,
                })
                try:
                    if self._commit_step(ct, op=f"workflow.c.{name}"):
                        if self.on_commit is not None:
                            self.on_commit(ct)
                        break
                except RetryExhausted:
                    continue
            state.status = TaskStatus.COMPENSATED
            self._count("compensations")
        self._log(execution.wid, wrecords.FINISHED, {"outcome": outcome})
        if outcome == wrecords.OUTCOME_CANCELLED:
            execution.status = ExecutionStatus.CANCELLED
            self._count("cancelled")
        else:
            execution.status = ExecutionStatus.COMPENSATED
            self._count("compensated")
        self._release(execution.wid)
        return execution.status
