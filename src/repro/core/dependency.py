"""The transaction dependencies graph (section 4.1).

Nodes are transactions; an edge from the *dependent* to the *dependee*
carries a dependency type.  ``form_dependency(type, t_i, t_j)`` always
constrains ``t_j`` relative to ``t_i``:

* **CD** (commit dependency) — if both commit, ``t_j`` cannot commit
  before ``t_i``; ``t_j``'s commit blocks until ``t_i`` terminates.
* **AD** (abort dependency) — if ``t_i`` aborts, ``t_j`` must abort; AD
  covers CD, so ``t_j``'s commit also waits for ``t_i`` to terminate.
* **GC** (group commit) — both commit or neither; symmetric, and a set of
  pairwise GC edges forms a commit *group*.

Two extension types from the ACTA repertoire (the paper notes "many types
of dependency can be formed [8]"):

* **BCD** (begin-on-commit) — ``t_j`` cannot begin until ``t_i`` commits;
* **BAD** (begin-on-abort) — ``t_j`` cannot begin until ``t_i`` aborts
  (the natural trigger for compensating transactions);
* **ED** (exclusion) — at most one of the two commits: ``t_i``'s commit
  forces ``t_j`` to abort (the primitive behind contingent alternatives
  and racing reservations).

``form_dependency`` performs "a check ... to prevent certain dependency
cycles": a cycle of CD/AD edges would block every member's commit forever
(GC cycles are fine — that is what a group is), so those are refused.

Edges are doubly hashed on the two tids involved so dependencies
emanating from or incoming to a transaction are located efficiently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import DependencyCycleError
from repro.common.hashtable import DoubleHashIndex


class DependencyType(enum.Enum):
    """The dependency types ``form_dependency`` accepts."""

    CD = "commit"
    AD = "abort"
    GC = "group_commit"
    BCD = "begin_on_commit"
    BAD = "begin_on_abort"
    ED = "exclusion"

    @property
    def blocks_commit(self):
        """Whether a dependent's commit must wait on the dependee."""
        return self in (DependencyType.CD, DependencyType.AD)

    @property
    def blocks_begin(self):
        """Whether a dependent's begin must wait on the dependee."""
        return self in (DependencyType.BCD, DependencyType.BAD)

    @property
    def aborts_dependent(self):
        """Whether the dependee's abort forces the dependent to abort."""
        return self in (DependencyType.AD, DependencyType.GC)

    @property
    def aborts_dependent_on_commit(self):
        """Whether the dependee's COMMIT forces the dependent to abort.

        True for exclusion, and for begin-on-abort (the dependent waited
        for an abort that can no longer happen).
        """
        return self in (DependencyType.ED, DependencyType.BAD)


@dataclass
class DependencyEdge:
    """One dependency: ``dependent`` constrained relative to ``dependee``."""

    dependent: object
    dependee: object
    dep_type: DependencyType
    # Group-commit marks: tids that announced "waiting for the other to
    # commit" on this edge (the section 4.2 commit step 2c protocol).
    marks: set = field(default_factory=set)

    def other(self, tid):
        """The endpoint that is not ``tid``."""
        return self.dependee if tid == self.dependent else self.dependent

    def __repr__(self):
        return (
            f"Edge({self.dependent!r} -{self.dep_type.name}-> "
            f"{self.dependee!r})"
        )


class DependencyGraph:
    """All dependency edges, indexed by both endpoints."""

    def __init__(self):
        self._index = DoubleHashIndex()  # (dependent, dependee) -> edges

    def add(self, dep_type, ti, tj):
        """Form a dependency of ``dep_type`` between ``ti`` and ``tj``.

        Follows the paper's argument convention: the new edge constrains
        ``tj`` relative to ``ti``.  Refuses commit-blocking cycles.
        Duplicate edges are idempotent.  Returns the edge.
        """
        if ti == tj:
            raise DependencyCycleError([ti, tj])
        for existing in self._index.by_left(tj):
            if existing.dependee == ti and existing.dep_type is dep_type:
                return existing
        if dep_type.blocks_commit and self._reaches(ti, tj):
            raise DependencyCycleError([tj, ti])
        edge = DependencyEdge(dependent=tj, dependee=ti, dep_type=dep_type)
        self._index.add(tj, ti, edge)
        return edge

    def _reaches(self, start, goal):
        """Whether ``goal`` is reachable from ``start`` via CD/AD edges."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for edge in self._index.by_left(node):
                if not edge.dep_type.blocks_commit:
                    continue
                nxt = edge.dependee
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # -- queries -----------------------------------------------------------------

    def outgoing(self, tid):
        """Edges where ``tid`` is the dependent (commit-time scan)."""
        return self._index.by_left(tid)

    def incoming(self, tid):
        """Edges where ``tid`` is the dependee (abort-time scan)."""
        return self._index.by_right(tid)

    def edges_involving(self, tid):
        """Every edge touching ``tid``."""
        return self._index.involving(tid)

    def gc_group(self, tid):
        """The group-commit component of ``tid`` (always contains it).

        GC edges are symmetric, so the component is the connected
        component of the GC-only subgraph.
        """
        group = {tid}
        stack = [tid]
        while stack:
            node = stack.pop()
            for edge in self.edges_involving(node):
                if edge.dep_type is not DependencyType.GC:
                    continue
                other = edge.other(node)
                if other not in group:
                    group.add(other)
                    stack.append(other)
        return group

    def abort_closure_preview(self, tid):
        """The tids a hypothetical abort of ``tid`` would take down.

        Pure graph traversal mirroring the manager's abort-cascade rules
        — GC is symmetric, AD/BCD cascade dependee→dependent — with no
        status filtering (terminated members are the manager's concern).
        The watchdog uses this for containment accounting *before*
        performing the abort, while the edges still exist.
        """
        closure = {tid}
        stack = [tid]
        while stack:
            current = stack.pop()
            for edge in self.edges_involving(current):
                if edge.dep_type is DependencyType.GC:
                    nxt = edge.other(current)
                elif (
                    edge.dep_type in (DependencyType.AD, DependencyType.BCD)
                    and edge.dependee == current
                ):
                    nxt = edge.dependent
                else:
                    continue
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return closure

    def gc_edges_within(self, group):
        """The GC edges among a group's members."""
        edges = []
        for tid in group:
            for edge in self._index.by_left(tid):
                if edge.dep_type is DependencyType.GC and edge not in edges:
                    edges.append(edge)
        return edges

    # -- removal -----------------------------------------------------------------

    def remove(self, edge):
        """Remove one edge."""
        self._index.remove(edge.dependent, edge.dependee, edge)

    def remove_involving(self, tid):
        """Remove all edges touching ``tid`` (post-termination cleanup)."""
        for edge in self.edges_involving(tid):
            self.remove(edge)

    def __len__(self):
        return len(self._index)
