"""The descriptor structures of section 4.1 (Figure 1).

* :class:`TransactionDescriptor` (TD) — tid, parent, status, and the list
  of the transaction's lock requests.  TDs live in a chained hash table
  keyed by tid.
* :class:`ObjectDescriptor` (OD) — per locked object: lists of granted and
  pending lock requests plus the list of permits on the object.  "Each
  object in the cache points to its own descriptor so no searching is
  needed" — here the lock manager keeps an OD map and hands ODs to
  callers, which cache them on typed object wrappers.
* :class:`LockRequestDescriptor` (LRD) — one transaction's lock on one
  object: pointers to its TD and OD, the operations held, the request
  status (granted / pending / upgrading), and the *suspended* flag the
  permit mechanism sets.
* :class:`PermitDescriptor` (PD) — a ``(t_i, t_j, op)`` triple on an OD:
  even if the object is locked by ``t_i`` in a conflicting mode, ``t_j``
  may still perform ``op``.  ``t_j`` or ``op`` of ``None`` means "any".

PDs and dependency edges are doubly hashed on the two tids involved (the
:class:`~repro.common.hashtable.DoubleHashIndex`) so permissions given by
or to a transaction are located efficiently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import UnknownTransactionError
from repro.common.hashtable import ChainedHashTable
from repro.common.ids import NULL_TID
from repro.core.status import TransactionStatus, check_transition


class LockRequestStatus(enum.Enum):
    """Status of a lock request (granted, pending, or upgrading)."""

    GRANTED = "granted"
    PENDING = "pending"
    UPGRADING = "upgrading"


@dataclass
class TransactionDescriptor:
    """The TD: identity, lineage, status, and held lock requests."""

    tid: object
    parent: object = NULL_TID
    status: TransactionStatus = TransactionStatus.INITIATED
    function: object = None
    args: tuple = ()
    locks: list = field(default_factory=list)  # granted LRDs (incl. suspended)
    abort_reason: str = ""
    savepoints: list = field(default_factory=list)  # active rollback marks

    def set_status(self, target):
        """Transition to ``target``, enforcing the status machine."""
        self.status = check_transition(self.status, target)
        return self.status

    def lock_on(self, oid):
        """This transaction's granted LRD on ``oid``, or ``None``."""
        for lrd in self.locks:
            if lrd.oid == oid:
                return lrd
        return None

    def locked_object_ids(self):
        """Object ids this transaction holds locks on, in acquisition order."""
        return [lrd.oid for lrd in self.locks]

    def __repr__(self):
        return (
            f"TD({self.tid!r}, {self.status.value}, locks={len(self.locks)})"
        )


@dataclass
class LockRequestDescriptor:
    """The LRD: one transaction's (requested or held) lock on one object."""

    td: TransactionDescriptor
    od: "ObjectDescriptor"
    operations: set = field(default_factory=set)
    status: LockRequestStatus = LockRequestStatus.GRANTED
    suspended: bool = False
    requested: set = field(default_factory=set)  # ops awaited while pending

    @property
    def tid(self):
        """The owning transaction's tid."""
        return self.td.tid

    @property
    def oid(self):
        """The locked object's id."""
        return self.od.oid

    def __repr__(self):
        flags = []
        if self.suspended:
            flags.append("suspended")
        if self.status is not LockRequestStatus.GRANTED:
            flags.append(self.status.value)
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (
            f"LRD({self.tid!r} on {self.oid!r},"
            f" ops={sorted(self.operations)}{suffix})"
        )


@dataclass(frozen=True)
class PermitDescriptor:
    """The PD: ``giver`` lets ``receiver`` perform ``operation`` on ``oid``.

    ``receiver is None`` — any transaction; ``operation is None`` — any
    operation.  ``derived`` marks permits synthesized by the transitive
    sharing rule of section 2.2.
    """

    oid: object
    giver: object
    receiver: object = None
    operation: object = None
    derived: bool = False

    def covers(self, requester, operation):
        """Whether this permit lets ``requester`` perform ``operation``."""
        receiver_ok = self.receiver is None or self.receiver == requester
        operation_ok = self.operation is None or self.operation == operation
        return receiver_ok and operation_ok

    def __repr__(self):
        receiver = "any" if self.receiver is None else repr(self.receiver)
        operation = "any" if self.operation is None else self.operation
        origin = ", derived" if self.derived else ""
        return (
            f"PD({self.giver!r} -> {receiver} : {operation}"
            f" on {self.oid!r}{origin})"
        )


class ObjectDescriptor:
    """The OD: granted locks, pending requests, and permits on one object.

    Beyond the Figure 1 lists, the OD keeps hot-path indexes so the lock
    and permit algorithms probe instead of scan:

    * granted and pending LRDs are also keyed by tid (``granted_for`` /
      ``pending_for`` are dict probes);
    * a live count of *unsuspended* granted locks, so ``acquire`` can
      skip conflict/permit evaluation entirely on uncontended objects;
    * permits keyed by giver (the ``allows`` probe) and by explicit
      receiver (the transitive-closure worklist probe).

    The lists remain the source of truth; every mutation must go through
    the ``attach_*`` / ``detach_*`` / ``set_suspended`` methods so the
    indexes never diverge (the permit property suite checks this).
    """

    def __init__(self, oid):
        self.oid = oid
        self.granted = []  # LRDs with status GRANTED (incl. suspended)
        self.pending = []  # LRDs with status PENDING / UPGRADING
        self.permits = []  # PermitDescriptors
        self._granted_by_tid = {}
        self._pending_by_tid = {}
        self._active_granted = 0  # granted and not suspended
        self._permits_by_giver = {}
        self._permits_by_receiver = {}  # explicit receivers only

    # -- granted locks ------------------------------------------------------

    def attach_granted(self, lrd):
        """Register a granted LRD (list + tid index + active count)."""
        self.granted.append(lrd)
        self._granted_by_tid[lrd.tid] = lrd
        if not lrd.suspended:
            self._active_granted += 1

    def detach_granted(self, lrd):
        """Unregister a granted LRD (release / delegation merge)."""
        self.granted.remove(lrd)
        del self._granted_by_tid[lrd.tid]
        if not lrd.suspended:
            self._active_granted -= 1

    def rekey_granted(self, lrd, new_td):
        """Move an LRD to a new owner in place (delegation).

        Keeps the list position and suspension state; only the tid key
        changes.
        """
        del self._granted_by_tid[lrd.tid]
        lrd.td = new_td
        self._granted_by_tid[lrd.tid] = lrd

    def set_suspended(self, lrd, flag):
        """Flip an LRD's suspended bit, keeping the active count true."""
        if lrd.suspended == flag:
            return
        lrd.suspended = flag
        self._active_granted += -1 if flag else 1

    def foreign_active_count(self, tid):
        """Unsuspended granted locks held by transactions other than ``tid``.

        Zero means nothing can conflict with a request by ``tid`` — the
        lock manager's contention fast path.
        """
        count = self._active_granted
        own = self._granted_by_tid.get(tid)
        if own is not None and not own.suspended:
            count -= 1
        return count

    def granted_for(self, tid):
        """The granted LRD of ``tid`` on this object, or ``None``."""
        return self._granted_by_tid.get(tid)

    # -- pending requests ---------------------------------------------------

    def attach_pending(self, lrd):
        """Register a pending LRD."""
        self.pending.append(lrd)
        self._pending_by_tid[lrd.tid] = lrd

    def detach_pending(self, lrd):
        """Unregister a pending LRD (grant or termination)."""
        self.pending.remove(lrd)
        del self._pending_by_tid[lrd.tid]

    def pending_for(self, tid):
        """The pending LRD of ``tid`` on this object, or ``None``."""
        return self._pending_by_tid.get(tid)

    # -- permits ------------------------------------------------------------

    def attach_permit(self, pd):
        """Register a PD (list + giver index + explicit-receiver index)."""
        self.permits.append(pd)
        self._permits_by_giver.setdefault(pd.giver, []).append(pd)
        if pd.receiver is not None:
            self._permits_by_receiver.setdefault(pd.receiver, []).append(pd)

    def detach_permit(self, pd):
        """Unregister a PD, dropping emptied index buckets."""
        self.permits.remove(pd)
        bucket = self._permits_by_giver[pd.giver]
        bucket.remove(pd)
        if not bucket:
            del self._permits_by_giver[pd.giver]
        if pd.receiver is not None:
            bucket = self._permits_by_receiver[pd.receiver]
            bucket.remove(pd)
            if not bucket:
                del self._permits_by_receiver[pd.receiver]

    def permits_from(self, giver):
        """PDs on this object whose giver is ``giver`` (the live bucket)."""
        return self._permits_by_giver.get(giver, _NO_PERMITS)

    def permits_to_receiver(self, receiver):
        """PDs whose *explicit* receiver is ``receiver`` (the live bucket)."""
        return self._permits_by_receiver.get(receiver, _NO_PERMITS)

    def is_idle(self):
        """No locks, no pending requests, no permits: the OD can be freed."""
        return not self.granted and not self.pending and not self.permits

    def __repr__(self):
        return (
            f"OD({self.oid!r}, granted={len(self.granted)},"
            f" pending={len(self.pending)}, permits={len(self.permits)})"
        )


_NO_PERMITS = ()
"""Shared empty bucket, so index misses allocate nothing."""


class TransactionTable:
    """The chained hash table of TDs, keyed by tid (section 4.1)."""

    def __init__(self):
        self._table = ChainedHashTable()

    def add(self, descriptor):
        """Register a new TD."""
        self._table.put(descriptor.tid, descriptor)

    def get(self, tid):
        """Return the TD for ``tid``; raise if unknown."""
        descriptor = self._table.get(tid)
        if descriptor is None:
            raise UnknownTransactionError(tid)
        return descriptor

    def maybe_get(self, tid):
        """Return the TD for ``tid`` or ``None``."""
        return self._table.get(tid)

    def remove(self, tid):
        """Forget a TD (post-termination cleanup)."""
        self._table.remove(tid)

    def __contains__(self, tid):
        return tid in self._table

    def __iter__(self):
        return iter(self._table.values())

    def __len__(self):
        return len(self._table)
