"""The permit table: section 2.2's ``permit`` primitive.

A permit ``(t_i, t_j, op)`` on object ``ob`` lets ``t_j`` perform ``op``
even while ``ob`` is locked by ``t_i`` in a conflicting mode — without
creating a serialization edge from ``t_i`` to ``t_j``.  The table
implements all four forms of the primitive (specific / any-object /
any-operation / any-transaction) and the **transitive sharing rule**:

    permit(t_i, t_j, S, O) then permit(t_j, t_k, S', O')
    implies permit(t_i, t_k, S ∩ S', O ∩ O').

Derived permits are materialized eagerly (a worklist closure per
insertion) and marked ``derived``.  Once materialized they stand on their
own — the paper says the effect is "as if the command ... had also been
executed" — so removing the intermediary's permits does not retract them.

Permits are stored on each object's OD (Figure 1) and doubly hashed on the
two tids so that "permissions given by or given to a transaction can be
located efficiently" (commit/abort step: *remove permissions given by and
given to t_i*).
"""

from __future__ import annotations

from repro.common.events import EventKind
from repro.common.hashtable import DoubleHashIndex
from repro.core.descriptors import PermitDescriptor


def _op_intersection(op_a, op_b):
    """Intersect two operation scopes where ``None`` means "all".

    Returns ``(ok, op)``: ``ok`` is False when the intersection is empty.
    """
    if op_a is None:
        return True, op_b
    if op_b is None:
        return True, op_a
    if op_a == op_b:
        return True, op_a
    return False, None


class PermitTable:
    """All permits in the system, indexed per object and per transaction."""

    def __init__(self, registry, events=None):
        self._registry = registry  # shared oid -> OD registry
        self._index = DoubleHashIndex()  # (giver, receiver) -> PDs
        self._events = events

    # -- insertion ---------------------------------------------------------

    def grant(self, oid, giver, receiver=None, operation=None):
        """Add a permit on one object; returns all PDs added (incl. derived).

        This is the single-object workhorse; the manager expands the
        any-object forms of ``permit`` into calls to this method, as the
        section 4.2 implementation of ``permit(t_i, t_j, op)`` prescribes.
        """
        added = []
        worklist = [(oid, giver, receiver, operation)]
        while worklist:
            item_oid, item_giver, item_receiver, item_op = worklist.pop()
            pd = self._insert(item_oid, item_giver, item_receiver, item_op,
                              derived=bool(added))
            if pd is None:
                continue  # duplicate: already covered
            added.append(pd)
            worklist.extend(self._compositions(pd))
        return added

    def _insert(self, oid, giver, receiver, operation, derived):
        od = self._registry.get_or_create(oid)
        for existing in od.permits_from(giver):
            if (
                existing.receiver == receiver
                and existing.operation == operation
            ):
                return None
        pd = PermitDescriptor(
            oid=oid,
            giver=giver,
            receiver=receiver,
            operation=operation,
            derived=derived,
        )
        od.attach_permit(pd)
        self._index.add(giver, receiver, pd)
        if self._events is not None:
            self._events.emit(
                EventKind.PERMIT,
                giver,
                oid=oid,
                receiver=receiver,
                operation=operation,
                derived=derived,
            )
        return pd

    def _compositions(self, pd):
        """Transitive compositions enabled by a newly inserted PD.

        A wildcard receiver already covers every transaction, so chains
        through a wildcard need no materialization.  Both directions are
        index probes on the OD: permits *received by* ``pd``'s giver
        compose on the left, permits *given by* ``pd``'s receiver on the
        right — no scan of unrelated permits.
        """
        od = self._registry.get_or_create(pd.oid)
        results = []
        # other ∘ pd : other's (explicit) receiver is pd's giver.
        for other in od.permits_to_receiver(pd.giver):
            if other is pd:
                continue
            ok, op = _op_intersection(other.operation, pd.operation)
            if ok:
                results.append((pd.oid, other.giver, pd.receiver, op))
        # pd ∘ other : pd's receiver is other's giver.
        if pd.receiver is not None:
            for other in od.permits_from(pd.receiver):
                if other is pd:
                    continue
                ok, op = _op_intersection(pd.operation, other.operation)
                if ok:
                    results.append((pd.oid, pd.giver, other.receiver, op))
        return results

    # -- queries ----------------------------------------------------------------

    def allows(self, oid, holder, requester, operation):
        """Whether ``holder`` permits ``requester`` to do ``operation`` on ``oid``.

        This is the check lock acquisition performs against each
        conflicting granted lock (section 4.2 read-lock/write-lock step
        1b).  The OD keys its permits by giver, so the check probes one
        (typically tiny) bucket instead of scanning every permit on the
        object — giver is never a wildcard, which is what makes the key
        exact.
        """
        od = self._registry.maybe_get(oid)
        if od is None:
            return False
        return any(
            pd.covers(requester, operation)
            for pd in od.permits_from(holder)
        )

    def given_by(self, tid):
        """All PDs whose giver is ``tid``."""
        return self._index.by_left(tid)

    def given_to(self, tid):
        """All PDs whose *explicit* receiver is ``tid``."""
        return self._index.by_right(tid)

    def objects_permitted_to(self, tid):
        """Object ids ``tid`` holds explicit permissions on.

        Used by the any-object forms of ``permit``: the paper finds "each
        object ob that t_i accessed or has permission to access" by
        traversing the LRD list and the permit descriptors.
        """
        return sorted({pd.oid for pd in self.given_to(tid)})

    def permits_on(self, oid):
        """All PDs attached to ``oid`` (a fresh list)."""
        od = self._registry.maybe_get(oid)
        return list(od.permits) if od is not None else []

    # -- removal / rewriting -------------------------------------------------------

    def remove_involving(self, tid):
        """Drop every permit given by or explicitly given to ``tid``.

        Called when ``tid`` terminates (commit step 6 / abort cleanup).
        """
        for pd in self._index.involving(tid):
            self._discard(pd)

    def _discard(self, pd):
        od = self._registry.maybe_get(pd.oid)
        if od is not None and pd in od.permits_from(pd.giver):
            od.detach_permit(pd)
            self._registry.release_if_idle(pd.oid)
        self._index.remove(pd.giver, pd.receiver, pd)

    def rewrite_giver(self, old_giver, new_giver, oids=None):
        """Re-attribute permits given by ``old_giver`` to ``new_giver``.

        Delegation step (b): "change any PD of the form (t_i, t_k, op) to
        (t_j, t_k, op)".  Restricted to ``oids`` when delegation covers an
        object set rather than everything.
        """
        rewritten = []
        for pd in self.given_by(old_giver):
            if oids is not None and pd.oid not in oids:
                continue
            self._discard(pd)
            replacement = self._insert(
                pd.oid, new_giver, pd.receiver, pd.operation, derived=pd.derived
            )
            if replacement is not None:
                rewritten.append(replacement)
        return rewritten

    def __len__(self):
        return len(self._index)
