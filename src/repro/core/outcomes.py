"""Outcome types returned by the non-blocking transaction-manager core.

The paper's primitives block ("t_i blocks and retries later starting at
step 1").  The core is a synchronous state machine instead: each primitive
either succeeds, definitively fails, or reports *would block* along with
who it is waiting for.  The runtimes translate would-block outcomes into
real blocking (threads) or scheduler yields (cooperative), and both retry
from step 1 exactly as the paper prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LockOutcome:
    """Result of a lock request.

    ``granted`` — the lock is now held.  Otherwise ``blockers`` lists the
    transactions holding conflicting granted locks (the waits-for edges the
    deadlock detector consumes).
    """

    granted: bool
    blockers: tuple = ()

    def __bool__(self):
        return self.granted


class PrepareStatus(enum.Enum):
    """How a ``try_prepare`` (distributed-commit vote) attempt resolved."""

    PREPARED = "prepared"  # vote-commit force-logged; awaiting the decision
    ALREADY_PREPARED = "already_prepared"  # duplicate prepare: same answer
    ABORTED = "aborted"  # cannot vote commit; the group must abort
    BLOCKED = "blocked"  # dependencies unresolved; retry later
    NOT_COMPLETED = "not_completed"  # code still running; wait first


@dataclass(frozen=True)
class PrepareOutcome:
    """Result of a distributed-commit vote attempt.

    Truthy iff the local group is (now or already) prepared — i.e. the
    site may send VOTE-COMMIT.  ``group`` lists every local member the
    vote covers; BLOCKED outcomes carry ``waiting_for`` exactly like
    :class:`CommitOutcome`.
    """

    status: PrepareStatus
    waiting_for: tuple = ()
    group: tuple = field(default=())

    def __bool__(self):
        return self.status in (
            PrepareStatus.PREPARED,
            PrepareStatus.ALREADY_PREPARED,
        )

    @property
    def is_final(self):
        """Whether retrying cannot change the answer."""
        return self.status in (
            PrepareStatus.PREPARED,
            PrepareStatus.ALREADY_PREPARED,
            PrepareStatus.ABORTED,
        )


class CommitStatus(enum.Enum):
    """How a ``try_commit`` attempt resolved."""

    COMMITTED = "committed"  # this call committed the transaction
    ALREADY_COMMITTED = "already_committed"  # paper: commit returns 1
    ABORTED = "aborted"  # paper: commit returns 0
    BLOCKED = "blocked"  # dependencies unresolved; retry later
    NOT_COMPLETED = "not_completed"  # code still running; wait first


@dataclass(frozen=True)
class CommitOutcome:
    """Result of a commit attempt.

    Truthy iff the transaction is (now or already) committed.  When
    ``status`` is BLOCKED, ``waiting_for`` lists the transactions whose
    termination (CD/AD) or commit participation (GC) is awaited.
    """

    status: CommitStatus
    waiting_for: tuple = ()
    group: tuple = field(default=())

    def __bool__(self):
        return self.status in (
            CommitStatus.COMMITTED,
            CommitStatus.ALREADY_COMMITTED,
        )

    @property
    def is_final(self):
        """Whether retrying cannot change the answer."""
        return self.status in (
            CommitStatus.COMMITTED,
            CommitStatus.ALREADY_COMMITTED,
            CommitStatus.ABORTED,
        )
