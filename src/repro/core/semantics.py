"""Operation semantics: what conflicts with what.

Section 2 treats operations abstractly ("operations that conflict with
t_i's operations"); section 4 concretizes to ``read`` / ``write`` lock
modes.  Section 5 sketches the future-work direction — exploiting
commutativity of class-specific methods ("operations to increase an
existing employee's salary and to add a new employee to a department
commute").

This module supports both: a :class:`ConflictTable` whose default entries
are the classic read/write matrix, extensible with new operation names and
commutativity declarations.  The lock manager consults the table, so
semantic concurrency (EX12) falls out of the same locking algorithm.
"""

from __future__ import annotations

READ = "read"
WRITE = "write"


class ConflictTable:
    """Conflict and coverage relations over named operations.

    Two operations *conflict* unless declared compatible.  The default
    table knows ``read`` and ``write``: read/read is compatible, every pair
    involving write conflicts.  ``covers`` says when a held operation lock
    also satisfies a new request (``write`` covers ``read``).

    Unknown operation names default to conflicting with everything except
    themselves when declared commutative — callers register operations
    explicitly to avoid surprises.
    """

    def __init__(self):
        self._compatible = set()
        self._covers = set()
        self._operations = set()
        self.register(READ)
        self.register(WRITE)
        self.declare_compatible(READ, READ)
        self.declare_covers(WRITE, READ)

    def register(self, operation):
        """Make ``operation`` a known name (idempotent)."""
        self._operations.add(operation)
        # Every operation covers (and trivially does not need) itself.
        self._covers.add((operation, operation))
        return operation

    @property
    def operations(self):
        """The registered operation names."""
        return frozenset(self._operations)

    def declare_compatible(self, op_a, op_b):
        """Declare that ``op_a`` and ``op_b`` do not conflict (symmetric)."""
        self.register(op_a)
        self.register(op_b)
        self._compatible.add((op_a, op_b))
        self._compatible.add((op_b, op_a))

    def declare_commutative(self, operation):
        """Declare ``operation`` compatible with itself (e.g. increment)."""
        self.declare_compatible(operation, operation)

    def declare_covers(self, held, requested):
        """Declare that holding ``held`` satisfies a request for ``requested``."""
        self.register(held)
        self.register(requested)
        self._covers.add((held, requested))

    def conflicts(self, op_a, op_b):
        """Whether the two operations conflict."""
        return (op_a, op_b) not in self._compatible

    def conflicts_any(self, held_ops, requested):
        """Whether ``requested`` conflicts with any operation in ``held_ops``."""
        return any(self.conflicts(held, requested) for held in held_ops)

    def covers(self, held_ops, requested):
        """Whether operations already held satisfy the new request."""
        return any((held, requested) in self._covers for held in held_ops)

    @classmethod
    def with_counter_ops(cls):
        """A table extended with commuting ``increment``/``decrement``.

        The section 5 example: increments commute with each other (and with
        decrements) but conflict with plain reads and writes.
        """
        table = cls()
        table.declare_commutative("increment")
        table.declare_commutative("decrement")
        table.declare_compatible("increment", "decrement")
        return table

    @classmethod
    def with_set_ops(cls):
        """A table extended with commuting set insertions.

        Section 5: "operations ... to add a new employee to a department
        commute"; insertions of distinct elements commute, which this
        coarse table approximates by declaring ``insert`` self-commutative.
        """
        table = cls()
        table.declare_commutative("insert")
        return table
