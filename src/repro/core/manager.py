"""The transaction manager: ASSET's primitive set (sections 2 and 4.2).

:class:`TransactionManager` is a *synchronous, non-blocking core*.  The
paper's primitives block and retry ("t_i blocks and retries later starting
at step 1"); here each primitive either completes or returns a would-block
outcome naming the transactions being waited on, and the runtimes
(:mod:`repro.runtime`) supply the blocking and the retrying.  This split
keeps the semantics runtime-independent: the deterministic cooperative
scheduler and the threaded runtime drive exactly the same code.

Concurrency note: EOS guards its shared control structures with latches;
the Python-appropriate equivalent is one reentrant mutex around the
manager's public methods (CPython's GIL would serialize most of them
anyway).  Object *data* accesses still take the per-frame S/X latches via
the storage manager, as section 4.2's read/write algorithms specify.
"""

from __future__ import annotations

import functools
import threading

from repro.common.clock import LogicalClock
from repro.common.errors import (
    InvalidStateError,
    QuarantinedObjectError,
    TransactionAborted,
)
from repro.common.events import EventBus, EventKind
from repro.common.ids import NULL_TID, IdGenerator, Tid
from repro.core.dependency import DependencyGraph, DependencyType
from repro.core.descriptors import TransactionDescriptor, TransactionTable
from repro.core.locks import LockManager, ObjectRegistry
from repro.core.outcomes import (
    CommitOutcome,
    CommitStatus,
    LockOutcome,
    PrepareOutcome,
    PrepareStatus,
)
from repro.core.permits import PermitTable
from repro.core.semantics import READ, WRITE, ConflictTable
from repro.core.status import TransactionStatus
from repro.storage.store import StorageManager


def _no_failpoint(name):
    """The default (disabled) failure hook."""


def _observed(name):
    """Record a primitive's logical-tick latency when metrics are attached.

    Detached (``manager.metrics is None``) the wrapper is one attribute
    load and an ``is None`` test — the EX19 bench holds that to ≤5% of
    the hot path.  Attached, the latency is the clock-tick distance
    across the call: every event emission ticks the shared clock, so the
    distance counts the work the primitive set in motion, and is exactly
    reproducible run-to-run.
    """

    metric_name = f"primitive.{name}.ticks"

    def decorate(method):
        # One-slot memo of (metrics, histogram): re-resolved whenever the
        # attached metrics object changes (written as one tuple so a
        # concurrent re-resolution can never mispair them).
        memo = [None]

        @functools.wraps(method)
        def observed(self, *args, **kwargs):
            metrics = self.metrics
            if metrics is None:
                return method(self, *args, **kwargs)
            bound = memo[0]
            if bound is None or bound[0] is not metrics:
                bound = (metrics, metrics.histogram(metric_name))
                memo[0] = bound
            start = self.clock.peek()
            try:
                return method(self, *args, **kwargs)
            finally:
                bound[1].observe(self.clock.peek() - start)

        return observed

    return decorate


class TransactionManager:
    """The full ASSET primitive set over a storage manager."""

    def __init__(
        self,
        storage=None,
        conflicts=None,
        max_transactions=None,
        events=None,
        clock=None,
        group_commit=None,
        failpoint=None,
        admission=None,
    ):
        if storage is None:
            # ``group_commit`` batches commit-record flushes: the GC
            # dependency's grouped durability point, applied to fsync.
            storage = StorageManager(group_commit=group_commit)
        self.storage = storage
        # Failure hooks: a callable invoked at the named semantic points
        # of commit/abort ("commit.log", "commit.logged", "abort.undo",
        # "abort.undone").  The chaos harness plugs a fault injector in
        # here to crash *between* semantic steps of the section 4.2
        # algorithms, not only between storage I/O calls.
        self.failpoint = failpoint if failpoint is not None else _no_failpoint
        self.clock = clock if clock is not None else LogicalClock()
        self.events = events if events is not None else EventBus(self.clock)
        self.conflicts = conflicts if conflicts is not None else ConflictTable()
        self.max_transactions = max_transactions
        # Admission controller (repro.resilience): consulted before any
        # other ``initiate`` work; sheds with a typed Backpressure error.
        self.admission = admission
        # Observability hook (repro.obs): a MetricsRegistry/ScopedMetrics
        # installed by ObservabilityKit.attach_manager, or None.  The
        # primitives' @_observed wrappers check this once per call.
        self.metrics = None

        self.table = TransactionTable()
        self.registry = ObjectRegistry()
        self.permits = PermitTable(self.registry, events=self.events)
        self.lock_manager = LockManager(
            self.registry, self.permits, conflicts=self.conflicts,
            events=self.events,
        )
        self.dependencies = DependencyGraph()

        # Resume tid allocation above anything the (possibly pre-existing)
        # log has seen: a reused tid would entangle this incarnation's
        # undo/redo with a previous one's.
        self._tids = IdGenerator(
            Tid, start=self.storage.log.max_tid_value() + 1
        )
        self._mutex = threading.RLock()
        self.stats = {
            "initiated": 0,
            "committed": 0,
            "aborted": 0,
            "cascaded_aborts": 0,
            "delegations": 0,
            "commit_blocks": 0,
        }

    # ------------------------------------------------------------------
    # basic primitives (section 2.1)
    # ------------------------------------------------------------------

    @_observed("initiate")
    def initiate(self, function=None, args=(), initiator=NULL_TID):
        """Register a new transaction; returns its tid, or the null tid.

        The transaction does not start executing — ``begin`` does that.
        The null tid is returned when the configured transaction limit is
        exceeded, as section 4.2 specifies.
        """
        with self._mutex:
            if self.admission is not None:
                self.admission.admit(self)
            if self.max_transactions is not None:
                live = sum(
                    1 for td in self.table if not td.status.is_terminated
                )
                if live >= self.max_transactions:
                    return NULL_TID
            tid = self._tids.next()
            td = TransactionDescriptor(
                tid=tid, parent=initiator, function=function, args=tuple(args)
            )
            self.table.add(td)
            self.stats["initiated"] += 1
            self.events.emit(EventKind.INITIATE, tid, parent=initiator)
            return tid

    def begin(self, *tids):
        """Start execution of one or more initiated transactions.

        Returns ``True`` only if every named transaction transitioned to
        running.  A transaction blocked by a begin dependency (BCD/BAD) or
        already begun/terminated leaves ``begin`` returning ``False``;
        use :meth:`begin_blockers` to distinguish "retry later" from
        "never".
        """
        with self._mutex:
            startable = []
            for tid in tids:
                td = self.table.get(tid)
                if td.status is not TransactionStatus.INITIATED:
                    return False
                if self.begin_blockers(tid):
                    return False
                startable.append(td)
            for td in startable:
                td.set_status(TransactionStatus.RUNNING)
                self.events.emit(EventKind.BEGIN, td.tid)
            return True

    def begin_blockers(self, tid):
        """Transactions whose termination must precede ``tid``'s begin."""
        blockers = []
        for edge in self.dependencies.outgoing(tid):
            if not edge.dep_type.blocks_begin:
                continue
            status = self.table.get(edge.dependee).status
            if (
                edge.dep_type is DependencyType.BCD
                and status is not TransactionStatus.COMMITTED
            ):
                blockers.append(edge.dependee)
            elif (
                edge.dep_type is DependencyType.BAD
                and status is not TransactionStatus.ABORTED
            ):
                blockers.append(edge.dependee)
        return blockers

    def note_completed(self, tid):
        """Record that ``tid``'s code finished executing.

        Locks are retained and changes stay volatile — commitment is a
        separate, explicit act (section 2.1).
        """
        with self._mutex:
            td = self.table.get(tid)
            if td.status.is_abort_bound:
                return False
            td.set_status(TransactionStatus.COMPLETED)
            self.events.emit(EventKind.COMPLETE, tid)
            return True

    def wait_outcome(self, tid):
        """The paper's ``wait``: ``True`` once execution completed (or the
        transaction committed), ``False`` if it aborted, ``None`` while it
        is still executing (the runtime keeps waiting)."""
        with self._mutex:
            status = self.table.get(tid).status
            if status in (
                TransactionStatus.COMPLETED,
                TransactionStatus.PREPARED,
                TransactionStatus.COMMITTING,
                TransactionStatus.COMMITTED,
            ):
                return True
            if status.is_abort_bound:
                return False
            return None

    def parent_of(self, tid):
        """The initiating transaction of ``tid`` (null for top level)."""
        with self._mutex:
            return self.table.get(tid).parent

    def status_of(self, tid):
        """Current :class:`TransactionStatus` of ``tid``."""
        with self._mutex:
            return self.table.get(tid).status

    def has_aborted(self, tid):
        """Status query: has ``tid`` aborted (or is it bound to)?"""
        with self._mutex:
            return self.table.get(tid).status.is_abort_bound

    def has_committed(self, tid):
        """Status query: has ``tid`` committed?"""
        with self._mutex:
            return self.table.get(tid).status is TransactionStatus.COMMITTED

    def transactions(self):
        """Snapshot of all transaction descriptors."""
        with self._mutex:
            return list(self.table)

    def committing_transactions(self):
        """Tids currently mid-commit, in one table pass (deadlock input).

        The detector used to snapshot every TD and probe each status
        through the mutex separately; quiescence checks run it often
        enough that the per-transaction round trips dominated.
        """
        with self._mutex:
            return [
                td.tid
                for td in self.table
                if td.status is TransactionStatus.COMMITTING
            ]

    # ------------------------------------------------------------------
    # object operations
    # ------------------------------------------------------------------

    def _active_td(self, tid):
        td = self.table.get(tid)
        if td.status.is_abort_bound:
            raise TransactionAborted(tid, td.abort_reason)
        if td.status not in (
            TransactionStatus.RUNNING,
            TransactionStatus.COMPLETED,
        ):
            raise InvalidStateError(
                f"{tid!r} is {td.status.value}; cannot operate on objects"
            )
        return td

    def create_object(self, tid, value, name=""):
        """Create a persistent object owned (write-locked) by ``tid``."""
        with self._mutex:
            td = self._active_td(tid)
            oid = self.storage.create_object(tid, value, name=name)
            od = self.registry.get_or_create(oid)
            self.lock_manager._grant(td, od, WRITE)
            self.events.emit(EventKind.WRITE, tid, oid=oid, created=True)
            return oid

    def try_read(self, tid, oid):
        """Read ``oid`` for ``tid``; section 4.2 ``read``.

        Returns ``(outcome, value)``; ``value`` is ``None`` on a blocked
        outcome.
        """
        with self._mutex:
            td = self._active_td(tid)
            if not self.lock_manager.holds(td, oid, READ):
                outcome = self.lock_manager.acquire(td, oid, READ)
                if not outcome:
                    return outcome, None
            try:
                value = self.storage.read_object(tid, oid)
            except QuarantinedObjectError:
                self._abort_poisoned(tid, oid)
                raise
            self.events.emit(EventKind.READ, tid, oid=oid)
            return LockOutcome(granted=True), value

    def try_write(self, tid, oid, value):
        """Write ``oid`` for ``tid``; section 4.2 ``write`` (logs images)."""
        with self._mutex:
            td = self._active_td(tid)
            if not self.lock_manager.holds(td, oid, WRITE):
                outcome = self.lock_manager.acquire(td, oid, WRITE)
                if not outcome:
                    return outcome
            try:
                self.storage.write_object(tid, oid, value)
            except QuarantinedObjectError:
                self._abort_poisoned(tid, oid)
                raise
            self.events.emit(EventKind.WRITE, tid, oid=oid)
            return LockOutcome(granted=True)

    def _abort_poisoned(self, tid, oid):
        """Quarantine escalation: a transaction that touched a quarantined
        object must abort rather than propagate garbage."""
        self.abort(tid, reason=f"poisoned by quarantined object {oid!r}")

    def try_operation(self, tid, oid, operation, transform):
        """Invoke a semantic operation on ``oid`` (section 5 direction).

        ``transform`` maps the current value to ``(new_value, result)``;
        a ``new_value`` of ``None`` means read-only.  The lock taken is the
        named ``operation``, so operations the conflict table declares
        commutative proceed concurrently.  Returns ``(outcome, result)``.
        """
        with self._mutex:
            td = self._active_td(tid)
            if not self.lock_manager.holds(td, oid, operation):
                outcome = self.lock_manager.acquire(td, oid, operation)
                if not outcome:
                    return outcome, None
            try:
                value = self.storage.read_object(tid, oid)
            except QuarantinedObjectError:
                self._abort_poisoned(tid, oid)
                raise
            new_value, result = transform(value)
            if new_value is not None:
                self.storage.write_object(tid, oid, new_value)
            self.events.emit(
                EventKind.OPERATION, tid, oid=oid, operation=operation
            )
            return LockOutcome(granted=True), result

    # ------------------------------------------------------------------
    # savepoints (extension: partial rollback within one transaction)
    # ------------------------------------------------------------------

    def savepoint(self, tid):
        """Mark the current point in ``tid``'s update history.

        Returns an opaque token for :meth:`rollback_to`.  Cheap: no log
        record is written; the token is the log's current high LSN,
        registered on the transaction so stale tokens can be refused.
        """
        with self._mutex:
            td = self._active_td(tid)
            token = self.storage.log.last_lsn_value
            td.savepoints.append(token)
            return token

    def rollback_to(self, tid, savepoint):
        """Undo ``tid``'s updates made after ``savepoint``.

        Before images are installed newest-first (compensations logged),
        exactly like an abort restricted to the savepoint suffix — but
        the transaction stays live and keeps all its locks, so it can
        retry along another path.  Returns the number of undone updates.

        Rolling back **destroys savepoints taken after the target** (as
        in SQL): a later ``rollback_to`` with a destroyed token would
        re-install before images of updates already undone, resurrecting
        intermediate values — so it raises
        :class:`~repro.common.errors.InvalidStateError` instead (a bug
        class found by the savepoint property test).
        """
        with self._mutex:
            td = self._active_td(tid)
            if savepoint not in td.savepoints:
                raise InvalidStateError(
                    f"savepoint {savepoint!r} of {tid!r} does not exist"
                    " (never taken, or destroyed by an earlier rollback)"
                )
            undone = self.storage.undo_to(tid, savepoint)
            # Keep the target itself (re-rollback is legal); drop later.
            position = td.savepoints.index(savepoint)
            del td.savepoints[position + 1 :]
            self.events.emit(
                EventKind.PARTIAL_ROLLBACK, tid,
                savepoint=savepoint, undone=undone,
            )
            return undone

    # ------------------------------------------------------------------
    # the new primitives (section 2.2)
    # ------------------------------------------------------------------

    @_observed("delegate")
    def delegate(self, ti, tj, oids=None):
        """Transfer responsibility for ``ti``'s operations to ``tj``.

        ``oids`` of ``None`` delegates everything ``ti`` is responsible
        for.  Lock requests move between TDs, permits given by ``ti`` on
        the delegated objects are rewritten to ``tj``, and a delegation
        record reaches the log so recovery attributes undo to ``tj``.
        """
        with self._mutex:
            td_i = self.table.get(ti)
            td_j = self.table.get(tj)
            if td_i.status.is_terminated:
                raise InvalidStateError(f"{ti!r} has terminated; cannot delegate")
            if td_j.status.is_terminated:
                raise InvalidStateError(f"{tj!r} has terminated; cannot receive")
            oid_set = set(oids) if oids is not None else None
            moved = self.lock_manager.delegate(td_i, td_j, oids=oid_set)
            self.permits.rewrite_giver(ti, tj, oids=oid_set)
            if moved:
                self.storage.log_delegate(ti, tj, moved)
            self.stats["delegations"] += 1
            self.events.emit(
                EventKind.DELEGATE, ti, to=tj, oids=tuple(moved)
            )
            return moved

    @_observed("permit")
    def permit(self, ti, tj=None, oids=None, operations=None):
        """Allow conflicting access: all four forms of section 2.2.

        * ``permit(ti, tj, oids, ops)`` — the fully specific form;
        * ``permit(ti, tj, operations=ops)`` — any object ``ti`` accessed
          or holds permissions on (expanded at call time, per section 4.2);
        * ``permit(ti, tj)`` — any operation on any such object;
        * ``permit(ti, oids=…, operations=…)`` — any transaction
          (``tj`` omitted).
        """
        with self._mutex:
            td_i = self.table.get(ti)
            if td_i.status.is_terminated:
                raise InvalidStateError(
                    f"{ti!r} has terminated; its permits are gone"
                )
            if tj is not None:
                td_j = self.table.get(tj)
                if td_j.status.is_terminated:
                    raise InvalidStateError(
                        f"{tj!r} has terminated; permitting it is moot"
                    )
            if oids is None:
                oid_list = list(
                    dict.fromkeys(
                        td_i.locked_object_ids()
                        + self.permits.objects_permitted_to(ti)
                    )
                )
            else:
                oid_list = list(oids)
            op_list = list(operations) if operations is not None else [None]
            granted = []
            for oid in oid_list:
                for operation in op_list:
                    granted.extend(
                        self.permits.grant(
                            oid, ti, receiver=tj, operation=operation
                        )
                    )
            return granted

    @_observed("form_dependency")
    def form_dependency(self, dep_type, ti, tj):
        """Form a dependency of ``dep_type`` between ``ti`` and ``tj``.

        Cycle-creating commit dependencies are refused
        (:class:`~repro.common.errors.DependencyCycleError`).  When either
        party has already terminated, no edge is stored (it could never be
        cleaned up): the dependency is *resolved on the spot* — satisfied
        constraints are a no-op returning ``None``, constraints that now
        force the dependent to abort do so immediately, and constraints
        that are already violated (or unenforceable) raise
        :class:`~repro.common.errors.InvalidStateError`.
        """
        with self._mutex:
            td_i = self.table.get(ti)
            td_j = self.table.get(tj)
            if td_i.status.is_terminated or td_j.status.is_terminated:
                return self._resolve_terminated_dependency(
                    dep_type, td_i, td_j
                )
            edge = self.dependencies.add(dep_type, ti, tj)
            self.events.emit(
                EventKind.FORM_DEPENDENCY, ti, other=tj, dep_type=dep_type.name
            )
            return edge

    def _resolve_terminated_dependency(self, dep_type, td_i, td_j):
        """Resolve form_dependency(dep_type, ti, tj) with a dead party.

        Convention reminder: the constrained (dependent) party is ``tj``;
        ``ti`` is the dependee.
        """
        ti, tj = td_i.tid, td_j.tid
        D = DependencyType
        if td_j.status is TransactionStatus.ABORTED:
            return None  # every constraint on an aborted dependent is moot
        if td_j.status is TransactionStatus.COMMITTED:
            if dep_type is D.GC and (
                td_i.status is TransactionStatus.COMMITTED
            ):
                return None  # both committed: the group constraint held
            raise InvalidStateError(
                f"{tj!r} already committed; cannot constrain it with"
                f" {dep_type.name} now"
            )
        # The dependent is live; the dependee terminated.
        if td_i.status is TransactionStatus.COMMITTED:
            if dep_type in (D.CD, D.AD, D.BCD):
                return None  # satisfied: the dependee committed
            if dep_type in (D.ED, D.BAD):
                self.abort(tj, reason=f"{dep_type.name}: {ti!r} committed")
                return None
            raise InvalidStateError(
                f"cannot join {tj!r} into a commit group with already-"
                f"committed {ti!r}"
            )
        # The dependee aborted.
        if dep_type in (D.AD, D.GC, D.BCD):
            self.abort(tj, reason=f"{dep_type.name} on aborted {ti!r}")
            return None
        return None  # CD, BAD, ED: satisfied by the dependee's abort

    # ------------------------------------------------------------------
    # commit (section 4.2)
    # ------------------------------------------------------------------

    @_observed("commit")
    def try_commit(self, tid):
        """One pass of the commit algorithm; never blocks.

        Returns a :class:`CommitOutcome`.  BLOCKED outcomes name the
        transactions being waited for; the runtimes retry "starting at
        step 1".
        """
        with self._mutex:
            td = self.table.get(tid)
            # Step 1: status checks.
            if td.status is TransactionStatus.COMMITTED:
                return CommitOutcome(CommitStatus.ALREADY_COMMITTED)
            if td.status.is_abort_bound:
                # Aborting is transient inside abort(); either way the
                # paper's step 1 answer is the same: commit returns 0.
                return CommitOutcome(CommitStatus.ABORTED)
            if td.status in (
                TransactionStatus.INITIATED,
                TransactionStatus.RUNNING,
            ):
                return CommitOutcome(CommitStatus.NOT_COMPLETED)
            if td.status in (
                TransactionStatus.COMPLETED,
                TransactionStatus.PREPARED,
            ):
                td.set_status(TransactionStatus.COMMITTING)
                self.events.emit(EventKind.COMMIT_REQUESTED, tid)

            # Steps 2-3: resolve the group and its dependencies.
            group = self.dependencies.gc_group(tid)
            waiting = []
            for member in sorted(group, key=lambda t: t.value):
                member_td = self.table.get(member)
                if member_td.status.is_abort_bound:
                    self.abort(tid, reason=f"GC member {member!r} aborted")
                    return CommitOutcome(CommitStatus.ABORTED)
                if member_td.status in (
                    TransactionStatus.INITIATED,
                    TransactionStatus.RUNNING,
                ):
                    waiting.append(member)
                    continue
                waiting.extend(
                    self._dependency_waits(member, group, mark=True)
                )
            if waiting:
                self.stats["commit_blocks"] += 1
                self.events.emit(
                    EventKind.COMMIT_BLOCKED, tid, waiting=tuple(waiting)
                )
                return CommitOutcome(
                    CommitStatus.BLOCKED, waiting_for=tuple(sorted(
                        set(waiting), key=lambda t: t.value
                    ))
                )

            # Check for abort dependencies on dependees that aborted.
            for member in group:
                for edge in self.dependencies.outgoing(member):
                    if edge.dep_type is DependencyType.AD:
                        dependee = self.table.get(edge.dependee)
                        if dependee.status.is_abort_bound:
                            self.abort(
                                tid,
                                reason=f"AD on aborted {edge.dependee!r}",
                            )
                            return CommitOutcome(CommitStatus.ABORTED)

            # Steps 4-6: commit the whole group atomically.
            ordered = sorted(group, key=lambda t: t.value)
            others = tuple(t for t in ordered if t != tid)
            self.failpoint("commit.log")
            self.storage.log_commit(tid, group=others)
            self.failpoint("commit.logged")
            for member in ordered:
                member_td = self.table.get(member)
                if member_td.status in (
                    TransactionStatus.COMPLETED,
                    TransactionStatus.PREPARED,
                ):
                    member_td.set_status(TransactionStatus.COMMITTING)
                member_td.set_status(TransactionStatus.COMMITTED)
            never_beginnable = []
            for member in ordered:
                # A BAD dependent waited for this member to abort (it
                # never will now); an ED dependent is excluded by this
                # member's commit.  Both must abort.
                for edge in self.dependencies.incoming(member):
                    if edge.dep_type.aborts_dependent_on_commit:
                        never_beginnable.append(edge.dependent)
                self.dependencies.remove_involving(member)
                member_td = self.table.get(member)
                self.lock_manager.release_all(member_td)
                self.permits.remove_involving(member)
                self.stats["committed"] += 1
                self.events.emit(EventKind.COMMITTED, member, group=others)
            for dependent in never_beginnable:
                dep_td = self.table.maybe_get(dependent)
                if dep_td is not None and not dep_td.status.is_terminated:
                    self.abort(
                        dependent, reason="excluded by dependee's commit"
                    )
            return CommitOutcome(
                CommitStatus.COMMITTED, group=tuple(ordered)
            )

    def _dependency_waits(self, member, group, mark=False):
        """Outside-group dependees whose termination ``member`` awaits."""
        waiting = []
        for edge in self.dependencies.outgoing(member):
            if mark and edge.dep_type is DependencyType.GC:
                edge.marks.add(member)
            if not edge.dep_type.blocks_commit:
                continue
            if edge.dependee in group:
                continue  # simultaneous commit satisfies in-group CD/AD
            dependee = self.table.maybe_get(edge.dependee)
            if dependee is None or dependee.status.is_terminated:
                continue
            waiting.append(edge.dependee)
        return waiting

    @_observed("prepare")
    def try_prepare(self, tid, gid=0, coordinator="", sites=()):
        """One pass of a distributed-commit vote; never blocks.

        The participant half of presumed-abort two-phase commit: run the
        same viability checks as :meth:`try_commit` steps 1-3 over the
        local GC group, and instead of committing, force-log a
        :class:`~repro.storage.log.PrepareRecord` and move every member
        to PREPARED.  A truthy outcome means the site may send
        VOTE-COMMIT; after that the group can only terminate by the
        coordinator's decision (or presumed-abort resolution).
        """
        with self._mutex:
            td = self.table.get(tid)
            if td.status is TransactionStatus.COMMITTED:
                # A duplicated PREPARE after the decision already landed:
                # the answer that keeps the protocol idempotent is "yes".
                return PrepareOutcome(PrepareStatus.ALREADY_PREPARED)
            if td.status is TransactionStatus.PREPARED:
                return PrepareOutcome(PrepareStatus.ALREADY_PREPARED)
            if td.status.is_abort_bound:
                return PrepareOutcome(PrepareStatus.ABORTED)
            if td.status in (
                TransactionStatus.INITIATED,
                TransactionStatus.RUNNING,
            ):
                return PrepareOutcome(PrepareStatus.NOT_COMPLETED)

            group = self.dependencies.gc_group(tid)
            waiting = []
            for member in sorted(group, key=lambda t: t.value):
                member_td = self.table.get(member)
                if member_td.status.is_abort_bound:
                    self.abort(
                        tid, reason=f"GC member {member!r} aborted before vote"
                    )
                    return PrepareOutcome(PrepareStatus.ABORTED)
                if member_td.status in (
                    TransactionStatus.INITIATED,
                    TransactionStatus.RUNNING,
                ):
                    waiting.append(member)
                    continue
                waiting.extend(self._dependency_waits(member, group))
            if waiting:
                return PrepareOutcome(
                    PrepareStatus.BLOCKED,
                    waiting_for=tuple(
                        sorted(set(waiting), key=lambda t: t.value)
                    ),
                )
            for member in group:
                for edge in self.dependencies.outgoing(member):
                    if edge.dep_type is DependencyType.AD:
                        dependee = self.table.get(edge.dependee)
                        if dependee.status.is_abort_bound:
                            self.abort(
                                tid,
                                reason=f"AD on aborted {edge.dependee!r}",
                            )
                            return PrepareOutcome(PrepareStatus.ABORTED)

            ordered = sorted(group, key=lambda t: t.value)
            others = tuple(t for t in ordered if t != tid)
            self.failpoint("prepare.log")
            self.storage.log_prepare(
                tid, group=others, gid=gid, coordinator=coordinator,
                sites=sites,
            )
            self.failpoint("prepare.logged")
            for member in ordered:
                member_td = self.table.get(member)
                if member_td.status is TransactionStatus.COMPLETED:
                    member_td.set_status(TransactionStatus.PREPARED)
                self.events.emit(
                    EventKind.PREPARED, member, gid=gid, coordinator=coordinator
                )
            return PrepareOutcome(
                PrepareStatus.PREPARED, group=tuple(ordered)
            )

    def is_commit_requested(self, tid):
        """Whether ``tid`` is mid-commit (for the deadlock detector)."""
        with self._mutex:
            td = self.table.maybe_get(tid)
            return td is not None and td.status is TransactionStatus.COMMITTING

    def commit_waits_of(self, tid):
        """Current commit-wait targets of ``tid`` (deadlock detector)."""
        with self._mutex:
            group = self.dependencies.gc_group(tid)
            waiting = set()
            for member in group:
                member_td = self.table.get(member)
                if member != tid and member_td.status in (
                    TransactionStatus.INITIATED,
                    TransactionStatus.RUNNING,
                ):
                    waiting.add(member)
                waiting.update(self._dependency_waits(member, group))
            return sorted(waiting, key=lambda t: t.value)

    # ------------------------------------------------------------------
    # abort (section 4.2)
    # ------------------------------------------------------------------

    @_observed("abort")
    def abort(self, tid, reason=""):
        """Abort ``tid``: undo, release, cascade.  Returns ``False`` only
        when ``tid`` has already committed (the paper's return 0).

        The abort *closure* — GC group members and (transitive) AD/BCD
        dependents — aborts together: all members' updates are undone in
        one pass in global reverse-LSN order, so interleaved cooperative
        updates cannot resurrect an aborted value mid-cascade.
        """
        with self._mutex:
            td = self.table.get(tid)
            if td.status is TransactionStatus.COMMITTED:
                return False
            if td.status.is_abort_bound:
                return True
            closure = self._abort_closure(tid)
            for member_td in closure:
                if member_td.tid == tid:
                    member_td.abort_reason = reason
                else:
                    member_td.abort_reason = f"cascade from {tid!r}"
                    self.stats["cascaded_aborts"] += 1
                member_td.set_status(TransactionStatus.ABORTING)
                self.events.emit(
                    EventKind.ABORT_REQUESTED,
                    member_td.tid,
                    reason=member_td.abort_reason,
                )
            self._finish_abort_group(closure)
            return True

    def _abort_closure(self, tid):
        """All TDs that must abort with ``tid``.

        GC is symmetric (the whole group aborts); AD cascades from
        dependee to dependent; a BCD dependent can never begin once its
        dependee aborted, so it is aborted too.  CD and BAD edges do not
        propagate aborts (a BAD dependent becomes free to begin).
        """
        closure = []
        seen = set()
        stack = [tid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            current_td = self.table.maybe_get(current)
            if current_td is None or current_td.status.is_terminated:
                continue
            if current_td.status is TransactionStatus.ABORTING:
                continue  # already being torn down higher in the stack
            closure.append(current_td)
            for edge in self.dependencies.edges_involving(current):
                if edge.dep_type is DependencyType.GC:
                    stack.append(edge.other(current))
                elif (
                    edge.dep_type in (DependencyType.AD, DependencyType.BCD)
                    and edge.dependee == current
                ):
                    stack.append(edge.dependent)
        return closure

    def _finish_abort_group(self, closure):
        tids = [td.tid for td in closure]
        # Step 2: coordinated undo across the whole closure.
        self.failpoint("abort.undo")
        self.storage.undo_many(tids)
        self.failpoint("abort.undone")
        for td in closure:
            tid = td.tid
            # Step 3: release all locks held by the member.
            self.lock_manager.release_all(td)
            # Steps 4-5: drop every dependency edge touching the member
            # (cascades were already captured by the closure).
            self.dependencies.remove_involving(tid)
            self.permits.remove_involving(tid)
            # Step 6: terminal state, log completion.
            self.storage.log_abort(tid)
            td.set_status(TransactionStatus.ABORTED)
            self.stats["aborted"] += 1
            self.events.emit(EventKind.ABORTED, tid, reason=td.abort_reason)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def sync(self):
        """Make every logged commit durable now.

        With a group-commit coalescer, commits between batch boundaries
        sit in the deferral window; ``sync`` drains it (one flush).
        Without one this is a plain extra flush.
        """
        with self._mutex:
            self.storage.sync_log()

    def checkpoint(self, truncate=False):
        """Flush pages and write a checkpoint record naming active tids.

        ``truncate=True`` discards the log when the system is quiescent
        (no active transactions), bounding restart-recovery time.
        """
        with self._mutex:
            active = [
                td.tid for td in self.table if td.status.is_active
            ]
            return self.storage.checkpoint(active=active, truncate=truncate)
