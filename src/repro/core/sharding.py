"""Shard routing and striped control structures (ROADMAP item 1).

The sharded engine stripes the paper's section 4.1 control structures —
object descriptors, permit buckets (which live on the ODs), and the
dependency-edge index — across N shards, each guarded by one of the
existing EOS S/X latches (:mod:`repro.common.latch`).  This module holds
the pieces that are pure data-plane routing:

* :class:`ShardRouter` — object placement.  Named objects hash by name
  (stable CRC32, independent of ``PYTHONHASHSEED``); unnamed objects
  hash by object-id value.  The router keeps an explicit directory so
  object ids stay *globally sequential* — the deterministic sharded
  runtime must allocate the same oid values as the single-manager
  oracle, or differential replay could never compare histories
  byte-for-byte.
* :class:`StripedDependencyGraph` — the dependency graph over a striped
  double-hash index.  Stripes are keyed by the dependent's tid residue;
  cross-stripe queries (``by_right``, ``involving``) reassemble global
  insertion order from a per-edge sequence number, so traversal order —
  and therefore abort-cascade event order — is identical to the
  unsharded graph.
"""

from __future__ import annotations

import os
import zlib

from repro.common.hashtable import DoubleHashIndex
from repro.core.dependency import DependencyGraph

DEFAULT_SHARDS = 4


def default_shard_count():
    """Shard count from ``REPRO_SHARDS`` (default 4)."""
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return DEFAULT_SHARDS
    count = int(raw)
    if count < 1:
        raise ValueError(f"REPRO_SHARDS must be >= 1, got {count}")
    return count


def stable_hash(key):
    """A process-independent hash for routing keys (CRC32 of the text).

    ``hash(str)`` is salted per process (PYTHONHASHSEED), which would
    make object placement — and thus WAL segment contents — differ
    between a run and its replay.
    """
    return zlib.crc32(str(key).encode("utf-8"))


class ShardRouter:
    """Maps objects (and routing keys) to shard indexes.

    Placement happens once, at object creation: named objects go to
    ``crc32(name) % n``, unnamed objects to ``oid.value % n``.  The
    choice is remembered in a directory keyed by oid value so every
    later touch routes without rehashing (and so recovery can verify
    its log-derived placements against the stores).
    """

    def __init__(self, n_shards):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._directory = {}  # oid value -> shard index
        # Placement epoch: bumped whenever shard ownership changes
        # (cluster membership churn).  Routed requests carry the epoch
        # they were resolved under; an owner that has seen a newer one
        # rejects the stale route and the caller re-resolves.
        self.epoch = 0

    def bump_epoch(self):
        """A new placement generation; returns the new epoch."""
        self.epoch += 1
        return self.epoch

    def shard_for_key(self, key):
        """The home shard for a routing key (transaction or object name)."""
        return stable_hash(key) % self.n_shards

    def place(self, oid, name=""):
        """Decide and remember the shard for a newly created object."""
        if name:
            shard = self.shard_for_key(name)
        else:
            shard = oid.value % self.n_shards
        self._directory[oid.value] = shard
        return shard

    def place_at(self, oid, shard):
        """Record an externally decided placement (recovery rebuild)."""
        self._directory[oid.value] = shard

    def shard_of(self, oid):
        """The shard an object lives on (hash fallback for unseen oids).

        The fallback keeps routing total: probing an object that was
        never created (a lock on a not-yet-existing oid, a test poking
        an arbitrary id) deterministically lands somewhere.
        """
        shard = self._directory.get(oid.value)
        if shard is None:
            if oid.name:
                shard = self.shard_for_key(oid.name)
            else:
                shard = oid.value % self.n_shards
        return shard

    def forget(self, oid):
        """Drop a placement (object deleted and undone)."""
        self._directory.pop(oid.value, None)

    def snapshot(self):
        """Copy of the directory (tests and recovery verification)."""
        return dict(self._directory)

    def clear(self):
        self._directory.clear()


class _StripedIndex:
    """A :class:`DoubleHashIndex` striped by the left key's tid residue.

    Presents the same duck API (``add`` / ``remove`` / ``by_left`` /
    ``by_right`` / ``involving`` / ``__len__``).  All items for one left
    key live in one stripe, so ``by_left`` is a single-stripe probe —
    the hot path (``outgoing`` during commit scans) never crosses
    stripes.  ``by_right`` and ``involving`` must union stripes; a
    global per-item sequence number restores exact insertion order so
    the union is indistinguishable from the unsharded index.
    """

    def __init__(self, n_stripes):
        self._stripes = [DoubleHashIndex() for __ in range(n_stripes)]
        self.n_stripes = n_stripes
        self._seq = 0
        self._order = {}  # id(item) -> insertion sequence

    def _stripe_of(self, left):
        return self._stripes[getattr(left, "value", 0) % self.n_stripes]

    def add(self, left, right, item):
        self._order[id(item)] = self._seq
        self._seq += 1
        self._stripe_of(left).add(left, right, item)

    def remove(self, left, right, item):
        self._stripe_of(left).remove(left, right, item)
        self._order.pop(id(item), None)

    def by_left(self, left):
        return self._stripe_of(left).by_left(left)

    def by_right(self, right):
        merged = [
            item
            for stripe in self._stripes
            for item in stripe.by_right(right)
        ]
        merged.sort(key=lambda item: self._order.get(id(item), 0))
        return merged

    def involving(self, tid):
        # Mirror DoubleHashIndex.involving exactly: left-side items in
        # insertion order, then right-side items in insertion order,
        # deduplicated by identity.
        seen = set()
        out = []
        for item in self.by_left(tid) + self.by_right(tid):
            if id(item) not in seen:
                seen.add(id(item))
                out.append(item)
        return out

    def __len__(self):
        return sum(len(stripe) for stripe in self._stripes)


class StripedDependencyGraph(DependencyGraph):
    """The dependency graph over stripes of the double-hash index.

    Pure structural striping: every traversal (gc_group, abort closure,
    cycle refusal) is inherited, and the seq-ordered striped index keeps
    edge iteration order identical to the single-index graph — which the
    differential harness relies on for byte-identical abort cascades.
    """

    def __init__(self, n_stripes):
        super().__init__()
        self._index = _StripedIndex(n_stripes)
