"""Deadlock detection over the waits-for graph.

Blocking in ASSET comes from two sources:

* **lock waits** — a pending lock request waits for the holders of
  conflicting granted locks;
* **commit waits** — a transaction whose commit was requested waits for
  the dependees of its CD/AD edges to terminate (and for its GC group
  members to complete).

Both kinds become edges of one waits-for graph; a cycle is a deadlock.
The runtimes invoke the detector when nothing can make progress (the
cooperative scheduler) or periodically (the threaded runtime) and abort a
victim — the youngest transaction in the cycle, whose undo is expected to
be cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WaitsForGraph:
    """A directed graph of "waits for" edges with cycle detection."""

    edges: dict = field(default_factory=dict)  # tid -> set of tids

    def add(self, waiter, holder):
        """Record that ``waiter`` waits for ``holder``."""
        if waiter == holder:
            return
        self.edges.setdefault(waiter, set()).add(holder)

    def remove_node(self, tid):
        """Drop ``tid`` and every edge touching it.

        Used by the resilience watchdog to prune an abort closure from
        the graph in the same step as the abort: a transaction reaped
        while parked in the commit-wait scan must not linger as a
        phantom waiter (or phantom blocker) for cycle detection.
        """
        self.edges.pop(tid, None)
        for holders in self.edges.values():
            holders.discard(tid)

    def __contains__(self, tid):
        if tid in self.edges:
            return True
        return any(tid in holders for holders in self.edges.values())

    def cycles(self):
        """All elementary cycles found by DFS (deduplicated by node set)."""
        found = []
        seen_sets = []
        state = {}
        path = []

        def visit(node):
            state[node] = "active"
            path.append(node)
            for nxt in sorted(
                self.edges.get(node, ()), key=lambda t: getattr(t, "value", 0)
            ):
                if state.get(nxt) == "active":
                    cycle = path[path.index(nxt):]
                    key = frozenset(cycle)
                    if key not in seen_sets:
                        seen_sets.append(key)
                        found.append(list(cycle))
                elif nxt not in state:
                    visit(nxt)
            path.pop()
            state[node] = "done"

        for node in sorted(self.edges, key=lambda t: getattr(t, "value", 0)):
            if node not in state:
                visit(node)
        return found


class DeadlockDetector:
    """Builds the waits-for graph from a transaction manager and scans it."""

    def __init__(self, manager):
        self.manager = manager

    def build_graph(self):
        """Assemble the current waits-for graph."""
        graph = WaitsForGraph()
        table = self.manager.table
        locks = self.manager.lock_manager
        for pending in locks.pending_requests():
            td = table.maybe_get(pending.tid)
            if td is not None and td.status.is_abort_bound:
                continue  # abort-bound: its waits are moot, not deadlock fuel
            for blocker in locks.blockers_of(pending):
                graph.add(pending.tid, blocker)
        for tid in self.manager.committing_transactions():
            for other in self.manager.commit_waits_of(tid):
                graph.add(tid, other)
        return graph

    def find_deadlocks(self):
        """Return the list of deadlock cycles (each a list of tids)."""
        return self.build_graph().cycles()

    @staticmethod
    def choose_victim(cycle):
        """Pick the youngest (highest-tid) member of a cycle as victim."""
        return max(cycle, key=lambda tid: tid.value)

    def resolve_one(self):
        """Abort a victim from one deadlock cycle, if any; return it."""
        cycles = self.find_deadlocks()
        if not cycles:
            return None
        victim = self.choose_victim(cycles[0])
        self.manager.abort(victim, reason="deadlock victim")
        return victim
