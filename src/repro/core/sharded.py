"""The sharded transaction manager (ROADMAP item 1).

:class:`ShardedTransactionManager` stripes the section 4.1 control
structures across N shards, each guarded by one of the EOS S/X latches
from :mod:`repro.common.latch`:

* object descriptors (and with them the permit buckets — permits
  physically attach to ODs) live in per-shard registries routed by the
  :class:`~repro.core.sharding.ShardRouter`;
* dependency edges live in a :class:`~repro.core.sharding.StripedDependencyGraph`;
* storage is a :class:`~repro.storage.segmented.ShardedStorageManager`
  — per-shard object stores and WAL segments with parallel group commit.

**Latch discipline** (the deadlock-freedom argument, also in
``docs/internals.md``):

* *Object operations* (``create_object`` / ``try_read`` / ``try_write``
  / ``try_operation``) take ONLY the one shard latch of the object they
  touch — never the manager mutex, never a second latch.  This is the
  hot path the sharding exists for: operations on different shards
  proceed in parallel.
* *Control operations* (``delegate``, ``permit``, ``try_commit``,
  ``try_prepare``, ``abort``, ``rollback_to``, ``checkpoint``,
  ``sync``) take the manager mutex FIRST, then their shard-latch set in
  ascending order.  The mutex serializes every multi-latch acquirer, so
  no two of them can hold-and-wait against each other; a single-latch
  holder (an object op) never waits for anything while holding its
  latch.  No cycle is possible.
* A thread-local held-latch set makes the discipline effectively
  reentrant (the latches themselves are not): ``abort`` called from
  inside ``try_commit`` — which already holds a latch subset — only
  acquires the latches it is missing.
* Aborts escalated from a quarantined read are raised OUT of the latch
  scope first (an abort takes the mutex; mutex-after-latch would invert
  the order).

Determinism: driven single-threaded (by the deterministic
:class:`~repro.runtime.sharded.ShardedRuntime`), every latch acquisition
is uncontended and the primitive bodies run the exact base-class code
paths, so the event stream — and the ACTA history derived from it — is
byte-identical to the single-manager oracle.  That is what the
differential harness in ``tests/differential`` checks.

Under the parallel runtime, counters in ``lock_manager.stats`` and the
logical clock are updated outside the mutex on the object-op fast path;
they are approximate there (documented), while all commit/abort/ACTA
bookkeeping stays exact because it runs under the mutex.
"""

from __future__ import annotations

import contextlib
import threading

from repro.common.errors import QuarantinedObjectError
from repro.common.events import EventKind
from repro.common.latch import Latch, LatchMode
from repro.core.locks import LockManager
from repro.core.manager import TransactionManager
from repro.core.outcomes import LockOutcome
from repro.core.permits import PermitTable
from repro.core.semantics import READ, WRITE
from repro.core.sharding import (
    ShardRouter,
    StripedDependencyGraph,
    default_shard_count,
)
from repro.storage.segmented import ShardedStorageManager


class _ShardState:
    """One shard's latch and its slice of the object-descriptor table."""

    __slots__ = ("index", "latch", "descriptors")

    def __init__(self, index):
        self.index = index
        self.latch = Latch(name=f"shard-{index}")
        self.descriptors = {}  # oid -> ObjectDescriptor


class _ShardedRegistry:
    """:class:`~repro.core.locks.ObjectRegistry` striped across shards.

    Same duck API; each OD lives in the descriptor dict of its object's
    home shard, so every OD access inside a latch scope touches only
    that shard's dict.
    """

    def __init__(self, router, shards):
        self.router = router
        self._shards = shards

    def _bucket(self, oid):
        return self._shards[self.router.shard_of(oid)].descriptors

    def get_or_create(self, oid):
        bucket = self._bucket(oid)
        od = bucket.get(oid)
        if od is None:
            from repro.core.descriptors import ObjectDescriptor

            od = ObjectDescriptor(oid)
            bucket[oid] = od
        return od

    def maybe_get(self, oid):
        return self._bucket(oid).get(oid)

    def release_if_idle(self, oid):
        bucket = self._bucket(oid)
        od = bucket.get(oid)
        if od is not None and od.is_idle():
            del bucket[oid]

    def all_descriptors(self):
        return [
            od
            for shard in self._shards
            for od in shard.descriptors.values()
        ]

    def __len__(self):
        return sum(len(shard.descriptors) for shard in self._shards)


class ShardedTransactionManager(TransactionManager):
    """The ASSET primitive set over sharded control structures."""

    def __init__(
        self,
        n_shards=None,
        storage=None,
        conflicts=None,
        max_transactions=None,
        events=None,
        clock=None,
        group_commit=None,
        failpoint=None,
        admission=None,
        injector=None,
        capacity=256,
    ):
        if storage is None:
            if n_shards is None:
                n_shards = default_shard_count()
            storage = ShardedStorageManager(
                n_shards,
                group_commit=group_commit,
                injector=injector,
                capacity=capacity,
            )
        elif n_shards is None:
            n_shards = storage.n_shards
        super().__init__(
            storage=storage,
            conflicts=conflicts,
            max_transactions=max_transactions,
            events=events,
            clock=clock,
            failpoint=failpoint,
            admission=admission,
        )
        self.n_shards = n_shards
        self.router = storage.router
        self.shards = [_ShardState(index) for index in range(n_shards)]
        # Re-seat the control structures over the stripes.  The permit
        # and lock managers stay the *global* base-class objects — their
        # own bookkeeping (pending requests, the permit index) is only
        # mutated under the mutex or per-transaction, and keeping them
        # global preserves the oracle's exact iteration orders — but
        # every OD they touch now routes through the striped registry.
        self.registry = _ShardedRegistry(self.router, self.shards)
        self.permits = PermitTable(self.registry, events=self.events)
        self.lock_manager = LockManager(
            self.registry,
            self.permits,
            conflicts=self.conflicts,
            events=self.events,
        )
        self.dependencies = StripedDependencyGraph(n_shards)
        self.stats["cross_shard_commits"] = 0
        self.stats["cross_shard_delegations"] = 0
        self._held = threading.local()

    # ------------------------------------------------------------------
    # latch discipline
    # ------------------------------------------------------------------

    def _held_shards(self):
        held = getattr(self._held, "shards", None)
        if held is None:
            held = set()
            self._held.shards = held
        return held

    @contextlib.contextmanager
    def _latched(self, shard_indexes):
        """Hold the X latches of ``shard_indexes`` (ascending, reentrant).

        Only latches this thread does not already hold are acquired; the
        thread-local held set is what lets ``abort`` nest inside
        ``try_commit``'s latch scope over non-reentrant latches.
        """
        held = self._held_shards()
        acquired = []
        for index in sorted(set(shard_indexes)):
            if index in held:
                continue
            self.shards[index].latch.acquire(LatchMode.EXCLUSIVE)
            held.add(index)
            acquired.append(index)
        try:
            yield
        finally:
            for index in reversed(acquired):
                held.discard(index)
                self.shards[index].latch.release(LatchMode.EXCLUSIVE)

    def _all_shards(self):
        return range(self.n_shards)

    def _shards_of_oids(self, oids):
        return {self.router.shard_of(oid) for oid in oids}

    def _shards_of_transaction(self, tid):
        """Every shard a transaction's control state touches: its lock
        footprint, permits it gave or received, and its WAL footprint."""
        shards = set()
        td = self.table.maybe_get(tid)
        if td is not None:
            shards |= self._shards_of_oids(td.locked_object_ids())
        for pd in self.permits.given_by(tid):
            shards.add(self.router.shard_of(pd.oid))
        for pd in self.permits.given_to(tid):
            shards.add(self.router.shard_of(pd.oid))
        shards |= self.storage.footprint_of(tid)
        return shards

    # ------------------------------------------------------------------
    # object operations: one shard latch, no mutex
    # ------------------------------------------------------------------

    def create_object(self, tid, value, name=""):
        oid, shard = self.storage.allocate_object(name=name)
        with self._latched({shard}):
            td = self._active_td(tid)
            self.storage.create_allocated(tid, oid, shard, value, name=name)
            od = self.registry.get_or_create(oid)
            self.lock_manager._grant(td, od, WRITE)
            self.events.emit(EventKind.WRITE, tid, oid=oid, created=True)
            return oid

    def try_read(self, tid, oid):
        shard = self.router.shard_of(oid)
        try:
            with self._latched({shard}):
                td = self._active_td(tid)
                if not self.lock_manager.holds(td, oid, READ):
                    outcome = self.lock_manager.acquire(td, oid, READ)
                    if not outcome:
                        return outcome, None
                value = self.storage.read_object(tid, oid)
                self.events.emit(EventKind.READ, tid, oid=oid)
                return LockOutcome(granted=True), value
        except QuarantinedObjectError:
            # Escalate outside the latch scope: abort takes the mutex,
            # and mutex-after-latch would invert the lock order.
            self._abort_poisoned(tid, oid)
            raise

    def try_write(self, tid, oid, value):
        shard = self.router.shard_of(oid)
        try:
            with self._latched({shard}):
                td = self._active_td(tid)
                if not self.lock_manager.holds(td, oid, WRITE):
                    outcome = self.lock_manager.acquire(td, oid, WRITE)
                    if not outcome:
                        return outcome
                self.storage.write_object(tid, oid, value)
                self.events.emit(EventKind.WRITE, tid, oid=oid)
                return LockOutcome(granted=True)
        except QuarantinedObjectError:
            self._abort_poisoned(tid, oid)
            raise

    def try_operation(self, tid, oid, operation, transform):
        shard = self.router.shard_of(oid)
        try:
            with self._latched({shard}):
                td = self._active_td(tid)
                if not self.lock_manager.holds(td, oid, operation):
                    outcome = self.lock_manager.acquire(td, oid, operation)
                    if not outcome:
                        return outcome, None
                value = self.storage.read_object(tid, oid)
                new_value, result = transform(value)
                if new_value is not None:
                    self.storage.write_object(tid, oid, new_value)
                self.events.emit(
                    EventKind.OPERATION, tid, oid=oid, operation=operation
                )
                return LockOutcome(granted=True), result
        except QuarantinedObjectError:
            self._abort_poisoned(tid, oid)
            raise

    # ------------------------------------------------------------------
    # control operations: mutex first, then the shard-latch set
    # ------------------------------------------------------------------

    def delegate(self, ti, tj, oids=None):
        with self._mutex:
            if oids is not None:
                involved = self._shards_of_oids(oids)
            else:
                involved = self._shards_of_transaction(ti)
            if len(involved) > 1:
                self.stats["cross_shard_delegations"] += 1
            with self._latched(involved):
                return super().delegate(ti, tj, oids=oids)

    def permit(self, ti, tj=None, oids=None, operations=None):
        with self._mutex:
            if oids is not None:
                involved = self._shards_of_oids(oids)
            else:
                td_i = self.table.get(ti)
                involved = self._shards_of_oids(
                    td_i.locked_object_ids()
                    + self.permits.objects_permitted_to(ti)
                )
            with self._latched(involved):
                return super().permit(
                    ti, tj=tj, oids=oids, operations=operations
                )

    def try_commit(self, tid):
        with self._mutex:
            involved = set()
            for member in self.dependencies.gc_group(tid):
                involved |= self._shards_of_transaction(member)
            if len(involved) > 1:
                self.stats["cross_shard_commits"] += 1
            with self._latched(involved):
                return super().try_commit(tid)

    def try_prepare(self, tid, gid=0, coordinator="", sites=()):
        with self._mutex:
            involved = set()
            for member in self.dependencies.gc_group(tid):
                involved |= self._shards_of_transaction(member)
            with self._latched(involved):
                return super().try_prepare(
                    tid, gid=gid, coordinator=coordinator, sites=sites
                )

    def abort(self, tid, reason=""):
        # The closure can reach transactions (and objects) anywhere, and
        # aborts are the rare path: latch everything.
        with self._mutex:
            with self._latched(self._all_shards()):
                return super().abort(tid, reason=reason)

    def rollback_to(self, tid, savepoint):
        with self._mutex:
            with self._latched(self.storage.footprint_of(tid)):
                return super().rollback_to(tid, savepoint)

    def sync(self):
        with self._mutex:
            with self._latched(self._all_shards()):
                return super().sync()

    def checkpoint(self, truncate=False):
        with self._mutex:
            with self._latched(self._all_shards()):
                return super().checkpoint(truncate=truncate)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def shard_census(self):
        """Per-shard control-structure population (tests, obs gauges)."""
        return [
            {
                "shard": shard.index,
                "descriptors": len(shard.descriptors),
                "router_entries": sum(
                    1
                    for placed in self.router.snapshot().values()
                    if placed == shard.index
                ),
            }
            for shard in self.shards
        ]
