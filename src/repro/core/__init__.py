"""The ASSET transaction facility — the paper's primary contribution.

This package implements the transaction primitives of section 2 over the
data structures and algorithms of section 4:

* :mod:`repro.core.status` — the transaction status machine;
* :mod:`repro.core.descriptors` — TD / OD / LRD / PD descriptor structures
  (Figure 1) and their hash-table indexes;
* :mod:`repro.core.semantics` — the operation conflict table (read/write by
  default, extensible with commuting method operations per section 5);
* :mod:`repro.core.permits` — the permit table with transitive sharing;
* :mod:`repro.core.locks` — the lock manager with permit-driven suspension;
* :mod:`repro.core.dependency` — the transaction dependency graph
  (CD / AD / GC and extensions);
* :mod:`repro.core.deadlock` — waits-for analysis and victim selection;
* :mod:`repro.core.manager` — :class:`~repro.core.manager.TransactionManager`,
  the full primitive set.
"""

from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.outcomes import CommitOutcome, CommitStatus, LockOutcome
from repro.core.semantics import READ, WRITE, ConflictTable
from repro.core.status import TransactionStatus
from repro.core.typedobjects import (
    Counter,
    TxRecord,
    TxSet,
    register_record_fields,
    semantic_conflict_table,
)

__all__ = [
    "CommitOutcome",
    "CommitStatus",
    "ConflictTable",
    "Counter",
    "DependencyType",
    "LockOutcome",
    "READ",
    "TransactionManager",
    "TransactionStatus",
    "TxRecord",
    "TxSet",
    "WRITE",
    "register_record_fields",
    "semantic_conflict_table",
]
