"""The transaction status machine.

Section 2.1 defines the vocabulary this enum captures:

* *initiated* — registered via ``initiate`` but not yet begun;
* *running* — executing its code;
* *completed* — its code has finished; locks are retained and changes are
  not yet persistent ("the transaction manager records the completion");
* *committing* / *aborting* — transitional states used by the section 4.2
  commit and abort algorithms;
* *committed* / *aborted* — terminated.

The multi-site runtime adds one state the paper leaves implicit:

* *prepared* — the transaction completed, voted to commit in a
  distributed group commit, and force-logged its vote.  It can no longer
  abort unilaterally: only the coordinator's decision (or presumed-abort
  resolution after a coordinator crash) moves it to committing or
  aborting.

A transaction is **active** if it has begun and not terminated (running or
completed, possibly mid-commit/mid-abort).
"""

from __future__ import annotations

import enum

from repro.common.errors import InvalidStateError


class TransactionStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    INITIATED = "initiated"
    RUNNING = "running"
    COMPLETED = "completed"
    PREPARED = "prepared"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTING = "aborting"
    ABORTED = "aborted"

    @property
    def is_terminated(self):
        """Committed or aborted (section 2.1's *terminated*)."""
        return self in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED)

    @property
    def is_active(self):
        """Begun but not terminated."""
        return self in (
            TransactionStatus.RUNNING,
            TransactionStatus.COMPLETED,
            TransactionStatus.PREPARED,
            TransactionStatus.COMMITTING,
            TransactionStatus.ABORTING,
        )

    @property
    def is_abort_bound(self):
        """Aborting or already aborted."""
        return self in (TransactionStatus.ABORTING, TransactionStatus.ABORTED)


_ALLOWED = {
    TransactionStatus.INITIATED: {
        TransactionStatus.RUNNING,
        TransactionStatus.ABORTING,
        TransactionStatus.ABORTED,
    },
    TransactionStatus.RUNNING: {
        TransactionStatus.COMPLETED,
        TransactionStatus.ABORTING,
    },
    TransactionStatus.COMPLETED: {
        TransactionStatus.PREPARED,
        TransactionStatus.COMMITTING,
        TransactionStatus.ABORTING,
    },
    TransactionStatus.PREPARED: {
        TransactionStatus.COMMITTING,
        TransactionStatus.ABORTING,
    },
    TransactionStatus.COMMITTING: {
        TransactionStatus.COMMITTED,
        TransactionStatus.COMPLETED,  # commit blocked: back off and retry
        TransactionStatus.ABORTING,
    },
    TransactionStatus.ABORTING: {TransactionStatus.ABORTED},
    TransactionStatus.COMMITTED: set(),
    TransactionStatus.ABORTED: set(),
}


def check_transition(current, target):
    """Raise :class:`InvalidStateError` unless ``current -> target`` is legal."""
    if target not in _ALLOWED[current]:
        raise InvalidStateError(
            f"illegal status transition {current.value} -> {target.value}"
        )
    return target
