"""Typed object views: the section 5 programme, made usable.

The paper's future work is to "capitalize on the semantics of objects
... by taking into account the compatibility of class specific operations
(methods)".  The machinery exists in :mod:`repro.core.semantics` (the
conflict table) and :meth:`TransactionManager.try_operation` (operation
locks); this module packages it as typed object wrappers a transaction
body can call directly:

* :class:`Counter` — ``increment``/``decrement`` commute with each other
  (the paper's salary-raise example) but conflict with plain read/write;
* :class:`TxRecord` — a field-structured record where updates to
  *disjoint field sets* commute ("operations that update an employee's
  salary and change the employee's department commute");
* :class:`TxSet` — a set where insertions commute (the add-an-employee
  example).

Each wrapper's methods build :class:`~repro.runtime.program.Operation`
requests, so bodies use them with ``yield``::

    counter = Counter(oid)
    new_value = yield counter.increment(tx, 5)

Use :func:`semantic_conflict_table` (or compose your own) when building
the :class:`~repro.core.manager.TransactionManager`, so the lock manager
knows which of these operations commute.
"""

from __future__ import annotations

from repro.common.codec import decode_int, decode_json, encode_int, encode_json
from repro.core.semantics import READ, WRITE, ConflictTable


def semantic_conflict_table():
    """A conflict table covering every operation this module issues.

    * ``increment``/``decrement`` commute (counters);
    * ``insert`` commutes with itself (sets);
    * ``update:<field>`` operations commute when their field names
      differ — a one-table approximation registered lazily by
      :meth:`TxRecord.update`; call :func:`register_record_fields` up
      front for the fields your records use.
    """
    table = ConflictTable()
    table.declare_commutative("increment")
    table.declare_commutative("decrement")
    table.declare_compatible("increment", "decrement")
    table.declare_commutative("insert")
    return table


def register_record_fields(table, fields):
    """Declare that updates to distinct ``fields`` commute.

    Each field gets an ``update:<field>`` operation; different fields'
    updates are compatible, same-field updates conflict.
    """
    operations = [f"update:{field}" for field in fields]
    for op in operations:
        table.register(op)
    for i, first in enumerate(operations):
        for second in operations[i + 1 :]:
            table.declare_compatible(first, second)
    return table


class Counter:
    """An integer counter with commuting increments."""

    def __init__(self, oid):
        self.oid = oid

    def increment(self, tx, amount=1):
        """Request: add ``amount``; result is the new value."""

        def transform(raw):
            value = decode_int(raw) + amount
            return encode_int(value), value

        return tx.operation(self.oid, "increment", transform)

    def decrement(self, tx, amount=1):
        """Request: subtract ``amount``; result is the new value."""

        def transform(raw):
            value = decode_int(raw) - amount
            return encode_int(value), value

        return tx.operation(self.oid, "decrement", transform)

    def get(self, tx):
        """Request: read the current value (a plain read lock)."""

        def transform(raw):
            return None, decode_int(raw)

        return tx.operation(self.oid, READ, transform)

    def set(self, tx, value):
        """Request: overwrite the counter (a plain write lock)."""

        def transform(raw):
            return encode_int(value), value

        return tx.operation(self.oid, WRITE, transform)


class TxRecord:
    """A JSON record whose per-field updates commute across fields."""

    def __init__(self, oid):
        self.oid = oid

    def update(self, tx, field, value):
        """Request: set one field under an ``update:<field>`` lock."""

        def transform(raw):
            record = decode_json(raw)
            record[field] = value
            return encode_json(record), record

        return tx.operation(self.oid, f"update:{field}", transform)

    def apply(self, tx, field, function):
        """Request: transform one field under its field lock."""

        def transform(raw):
            record = decode_json(raw)
            record[field] = function(record.get(field))
            return encode_json(record), record[field]

        return tx.operation(self.oid, f"update:{field}", transform)

    def get(self, tx, field=None):
        """Request: read the record (or one field) under a read lock."""

        def transform(raw):
            record = decode_json(raw)
            return None, record if field is None else record.get(field)

        return tx.operation(self.oid, READ, transform)


class TxSet:
    """A set (stored as a sorted JSON list) with commuting inserts."""

    def __init__(self, oid):
        self.oid = oid

    def insert(self, tx, element):
        """Request: add ``element``; result says whether it was new."""

        def transform(raw):
            elements = decode_json(raw)
            if element in elements:
                return None, False
            elements.append(element)
            elements.sort()
            return encode_json(elements), True

        return tx.operation(self.oid, "insert", transform)

    def remove(self, tx, element):
        """Request: remove ``element`` (a plain write: removals do not
        commute with membership checks)."""

        def transform(raw):
            elements = decode_json(raw)
            if element not in elements:
                return None, False
            elements.remove(element)
            return encode_json(elements), True

        return tx.operation(self.oid, WRITE, transform)

    def contains(self, tx, element):
        """Request: membership test under a read lock."""

        def transform(raw):
            return None, element in decode_json(raw)

        return tx.operation(self.oid, READ, transform)

    def members(self, tx):
        """Request: the full membership list under a read lock."""

        def transform(raw):
            return None, list(decode_json(raw))

        return tx.operation(self.oid, READ, transform)
