"""The lock manager: section 4.2's ``read-lock`` / ``write-lock`` algorithm.

Locking is operation-based (the conflict table defaults to read/write but
extends to commuting methods, section 5).  The algorithm is the paper's,
step for step:

1. Scan the granted lock requests on the object's OD.

   a. A granted lock of the requester that is not suspended and covers the
      request → success.
   b. A conflicting granted lock held by ``t_j``: scan the object's
      permits.  If ``t_j`` permits the requester, *suspend* that granted
      lock; with no permission the requester blocks (the core returns a
      blocked outcome and the runtimes retry from step 1).

2. The requester can now lock: create its LRD (or extend / un-suspend an
   existing one), and apply the suspensions decided in 1b.

Suspension is what allows controlled conflicting access: a suspended lock
stops excluding others but continues to represent the holder's
responsibility for its past operations.  The system-wide invariant — two
granted, *unsuspended* lock requests never conflict — is enforced here and
verified by property tests.
"""

from __future__ import annotations

from repro.common.events import EventKind
from repro.core.descriptors import (
    LockRequestDescriptor,
    LockRequestStatus,
    ObjectDescriptor,
)
from repro.core.outcomes import LockOutcome
from repro.core.semantics import ConflictTable


class ObjectRegistry:
    """The live object descriptors, keyed by object id.

    ODs are created on first lock/permit and freed when idle, mirroring
    the paper's cache-attached descriptors.
    """

    def __init__(self):
        self._descriptors = {}

    def get_or_create(self, oid):
        """The OD for ``oid``, creating it if this is the first interest."""
        od = self._descriptors.get(oid)
        if od is None:
            od = ObjectDescriptor(oid)
            self._descriptors[oid] = od
        return od

    def maybe_get(self, oid):
        """The OD for ``oid`` or ``None``."""
        return self._descriptors.get(oid)

    def release_if_idle(self, oid):
        """Free the OD when nothing references the object any more."""
        od = self._descriptors.get(oid)
        if od is not None and od.is_idle():
            del self._descriptors[oid]

    def all_descriptors(self):
        """Snapshot of live ODs (tests and deadlock analysis)."""
        return list(self._descriptors.values())

    def __len__(self):
        return len(self._descriptors)


class LockManager:
    """Grants, blocks, suspends, delegates, and releases locks."""

    def __init__(self, registry, permits, conflicts=None, events=None):
        self.registry = registry
        self.permits = permits
        self.conflicts = conflicts if conflicts is not None else ConflictTable()
        self._events = events
        self._pending_by_tid = {}
        self.stats = {
            "grants": 0, "blocks": 0, "suspensions": 0, "fast_grants": 0,
        }

    # -- acquisition -------------------------------------------------------------

    def acquire(self, td, oid, operation):
        """Request an ``operation`` lock on ``oid`` for ``td``.

        Returns a :class:`LockOutcome`; on a blocked outcome a pending LRD
        is registered (for the deadlock detector) and the caller retries
        later, re-entering at step 1 as the paper specifies.
        """
        od = self.registry.get_or_create(oid)
        if od.foreign_active_count(td.tid) == 0:
            # Contention fast path: every granted lock is either the
            # requester's own or suspended, so nothing can conflict —
            # skip conflict and permit evaluation entirely.
            self.stats["fast_grants"] += 1
            self._grant(td, od, operation)
            return LockOutcome(granted=True)
        to_suspend = []
        blockers = []
        for gl in od.granted:
            if gl.td is td:
                continue  # own locks never conflict with oneself
            if gl.suspended:
                continue  # suspended locks stop excluding others
            if not self.conflicts.conflicts_any(gl.operations, operation):
                continue
            if self.permits.allows(oid, gl.tid, td.tid, operation):
                to_suspend.append(gl)
            else:
                blockers.append(gl.tid)

        if blockers:
            self._note_pending(td, od, operation)
            self.stats["blocks"] += 1
            if self._events is not None:
                self._events.emit(
                    EventKind.LOCK_BLOCKED,
                    td.tid,
                    oid=oid,
                    operation=operation,
                    blockers=tuple(blockers),
                )
            return LockOutcome(granted=False, blockers=tuple(blockers))

        for gl in to_suspend:
            od.set_suspended(gl, True)
            self.stats["suspensions"] += 1
            if self._events is not None:
                self._events.emit(
                    EventKind.LOCK_SUSPENDED,
                    gl.tid,
                    oid=oid,
                    for_tid=td.tid,
                    operation=operation,
                )
        self._grant(td, od, operation)
        return LockOutcome(granted=True)

    def holds(self, td, oid, operation):
        """Whether ``td`` already holds an unsuspended lock covering ``operation``."""
        lrd = td.lock_on(oid)
        return (
            lrd is not None
            and not lrd.suspended
            and self.conflicts.covers(lrd.operations, operation)
        )

    def _grant(self, td, od, operation):
        lrd = od.granted_for(td.tid)
        if lrd is None:
            lrd = LockRequestDescriptor(
                td=td, od=od, operations={operation},
                status=LockRequestStatus.GRANTED,
            )
            od.attach_granted(lrd)
            td.locks.append(lrd)
        else:
            lrd.operations.add(operation)
            # Re-activating a suspended lock resurrects its WHOLE
            # operation set, not just the operation being granted now.
            # While any active foreign grant still conflicts with that
            # set, the lock must stay suspended — otherwise a holder
            # whose write lock was suspended by a permitted reader could
            # revive the write exclusion by merely re-requesting a read
            # (found by the lock-invariant property test).
            if lrd.suspended and not self._suspension_still_needed(td, od, lrd):
                od.set_suspended(lrd, False)
            lrd.status = LockRequestStatus.GRANTED
        self._clear_pending(td, od)
        self.stats["grants"] += 1
        if self._events is not None:
            kind = (
                EventKind.WRITE_LOCK
                if self.conflicts.conflicts(operation, "read")
                else EventKind.READ_LOCK
            )
            self._events.emit(kind, td.tid, oid=od.oid, operation=operation)
        return lrd

    def _suspension_still_needed(self, td, od, lrd):
        """Whether re-activating ``lrd`` would leave two conflicting
        active grants on ``od``."""
        for gl in od.granted:
            if gl.td is td or gl.suspended:
                continue
            for operation in lrd.operations:
                if self.conflicts.conflicts_any(gl.operations, operation):
                    return True
        return False

    # -- pending bookkeeping --------------------------------------------------------

    def _note_pending(self, td, od, operation):
        pending = od.pending_for(td.tid)
        if pending is None:
            status = (
                LockRequestStatus.UPGRADING
                if od.granted_for(td.tid) is not None
                else LockRequestStatus.PENDING
            )
            pending = LockRequestDescriptor(
                td=td, od=od, operations=set(), status=status,
            )
            od.attach_pending(pending)
            self._pending_by_tid.setdefault(td.tid, []).append(pending)
        pending.requested.add(operation)

    def _clear_pending(self, td, od):
        pending = od.pending_for(td.tid)
        if pending is not None:
            od.detach_pending(pending)
            mine = self._pending_by_tid.get(td.tid)
            if mine is not None:
                if pending in mine:
                    mine.remove(pending)
                if not mine:
                    # Emptied per-tid lists must go, or the dict grows
                    # with every transaction that ever blocked.
                    del self._pending_by_tid[td.tid]

    def pending_requests(self, tid=None):
        """Pending LRDs, optionally for one transaction (deadlock input)."""
        if tid is not None:
            return list(self._pending_by_tid.get(tid, ()))
        # Snapshot the per-tid lists first: under the parallel sharded
        # runtime, object ops register/clear pendings outside the manager
        # mutex, so iterating the live dict here (the detector's path)
        # could see it resize mid-iteration.
        return [
            lrd
            for lrds in list(self._pending_by_tid.values())
            for lrd in list(lrds)
        ]

    def blockers_of(self, pending):
        """Recompute who currently blocks a pending request."""
        if pending.od.foreign_active_count(pending.tid) == 0:
            return []  # nothing unsuspended and foreign: nothing blocks
        blockers = []
        for gl in pending.od.granted:
            if gl.td is pending.td or gl.suspended:
                continue
            for operation in pending.requested:
                if self.conflicts.conflicts_any(
                    gl.operations, operation
                ) and not self.permits.allows(
                    pending.oid, gl.tid, pending.tid, operation
                ):
                    blockers.append(gl.tid)
                    break
        return blockers

    # -- delegation (section 4.2, delegate step a) -------------------------------------

    def delegate(self, td_from, td_to, oids=None):
        """Move granted LRDs from ``td_from`` to ``td_to``.

        ``oids`` of ``None`` moves everything.  When the delegatee already
        holds a lock on the same object, the requests merge (operations
        union; unsuspended wins).  Returns the object ids affected.
        """
        moved = []
        for lrd in list(td_from.locks):
            if oids is not None and lrd.oid not in oids:
                continue
            td_from.locks.remove(lrd)
            existing = td_to.lock_on(lrd.oid)
            if existing is not None:
                existing.operations |= lrd.operations
                lrd.od.detach_granted(lrd)
                # An unsuspended incoming lock normally re-activates the
                # merged request — but the merge also widens its
                # operation set, and re-activation must not put the
                # widened set in conflict with an active foreign grant
                # (same hazard as re-granting onto a suspended lock).
                suspended = existing.suspended and lrd.suspended
                if not suspended and self._suspension_still_needed(
                    td_to, existing.od, existing
                ):
                    suspended = True
                existing.od.set_suspended(existing, suspended)
            else:
                lrd.od.rekey_granted(lrd, td_to)
                td_to.locks.append(lrd)
            moved.append(lrd.oid)
        return moved

    # -- release --------------------------------------------------------------------

    def release_all(self, td):
        """Release every lock and pending request of ``td`` (termination)."""
        for lrd in list(td.locks):
            lrd.od.detach_granted(lrd)
            self.registry.release_if_idle(lrd.oid)
        td.locks.clear()
        for pending in self._pending_by_tid.pop(td.tid, []):
            pending.od.detach_pending(pending)
            self.registry.release_if_idle(pending.oid)

    # -- invariants (tests) ------------------------------------------------------------

    def check_invariants(self):
        """Assert the no-two-unsuspended-conflicting-locks invariant.

        Returns the list of violations (empty when healthy); tests assert
        emptiness, and the property suite calls this after every step.
        """
        violations = []
        for od in self.registry.all_descriptors():
            active = [gl for gl in od.granted if not gl.suspended]
            for i, first in enumerate(active):
                for second in active[i + 1 :]:
                    for op in second.operations:
                        if self.conflicts.conflicts_any(first.operations, op):
                            violations.append((od.oid, first.tid, second.tid))
                            break
        return violations
