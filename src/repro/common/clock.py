"""A logical clock for deterministic timestamps.

Benchmarks and the cooperative runtime need a notion of time that does not
depend on the wall clock, so that runs are reproducible.  The logical clock
ticks once per scheduler step (or whenever a component asks it to) and every
event carries the tick at which it occurred.
"""

from __future__ import annotations

import threading


class LogicalClock:
    """A monotonically increasing integer clock.

    Thread-safe: the threaded runtime ticks it from many threads.  ``now``
    reads without advancing; ``tick`` advances and returns the new value.
    """

    def __init__(self, start=0):
        self._value = start
        self._lock = threading.Lock()

    def now(self):
        """Return the current tick without advancing the clock."""
        with self._lock:
            return self._value

    def peek(self):
        """Lock-free :meth:`now` for hot-path probes.

        Reading one int attribute is atomic under CPython; the lock in
        ``now`` only adds ordering no tick-distance measurement needs.
        """
        return self._value

    def tick(self, amount=1):
        """Advance the clock by ``amount`` ticks and return the new value."""
        if amount < 0:
            raise ValueError("clock cannot move backwards")
        with self._lock:
            self._value += amount
            return self._value

    def advance_to(self, value):
        """Move the clock forward to ``value`` if it is ahead of now."""
        with self._lock:
            if value > self._value:
                self._value = value
            return self._value
