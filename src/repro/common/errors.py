"""Exception hierarchy for the ASSET reproduction.

Every exception raised by the library derives from :class:`AssetError`, so
applications can catch one type at the boundary.  Storage-level failures
derive from :class:`StorageError`; transaction-facility failures derive
directly from :class:`AssetError`.
"""


class AssetError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidStateError(AssetError):
    """An operation was attempted in a transaction state that forbids it.

    For example calling ``begin`` on a transaction that is already running,
    or delegating from a transaction that has terminated.
    """


class UnknownTransactionError(AssetError):
    """A transaction identifier does not name a registered transaction."""

    def __init__(self, tid):
        super().__init__(f"unknown transaction: {tid!r}")
        self.tid = tid


class UnknownObjectError(AssetError):
    """An object identifier does not name a stored object."""

    def __init__(self, oid):
        super().__init__(f"unknown object: {oid!r}")
        self.oid = oid


class ResourceExhaustedError(AssetError):
    """The transaction manager ran out of a configured resource.

    The paper's ``initiate`` returns the null tid when "the number of
    transactions exceed a predetermined number"; this exception carries the
    same meaning for callers who prefer exceptions over null checks.
    """


class TransactionAborted(AssetError):
    """Raised inside a transaction program when its transaction was aborted.

    Runtimes deliver this into a running program whose transaction has been
    aborted from the outside (an abort cascade, a deadlock victim, or an
    explicit ``abort`` call), unwinding the program immediately.
    """

    def __init__(self, tid, reason=""):
        detail = f"transaction {tid!r} aborted"
        if reason:
            detail = f"{detail}: {reason}"
        super().__init__(detail)
        self.tid = tid
        self.reason = reason


class DependencyCycleError(AssetError):
    """Forming a dependency would create a forbidden cycle.

    The paper's ``form_dependency`` performs "a check ... to prevent certain
    dependency cycles"; this error reports the offending cycle.
    """

    def __init__(self, cycle):
        path = " -> ".join(repr(t) for t in cycle)
        super().__init__(f"dependency cycle: {path}")
        self.cycle = list(cycle)


class StorageError(AssetError):
    """Base class for storage-manager failures."""


class LatchError(StorageError):
    """A latch was used incorrectly (released without being held, etc.)."""


class RecoveryError(StorageError):
    """Restart recovery found an inconsistency it could not repair."""
