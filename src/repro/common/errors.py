"""Exception hierarchy for the ASSET reproduction.

Every exception raised by the library derives from :class:`AssetError`, so
applications can catch one type at the boundary.  The base class carries
optional ``tid`` / ``op`` context — *which* transaction and *which*
primitive were involved — so errors crossing the resilience layer (retry
policies, watchdog aborts, admission control) stay attributable without
string parsing.

Storage-level failures derive from :class:`StorageError`; the resilience
error classes (:class:`DeadlineExceeded`, :class:`LeaseExpired`,
:class:`Backpressure`, :class:`RetryExhausted`,
:class:`SchedulerStalledError`) slot in next to the transaction-facility
errors.  Failures worth retrying — whatever subsystem raised them — also
derive from the :class:`TransientError` marker, which is what retry
policies filter on by default: :class:`TransientIOError` for storage,
and the :class:`NetworkError` branch (:class:`MessageDropped`,
:class:`NetworkTimeout`, :class:`PartitionedError`) for the message
fabric, so fabric sends retry under the same policies without
special-casing.
"""


class AssetError(Exception):
    """Base class for all errors raised by the repro library.

    ``tid`` names the transaction the failure concerns (``None`` when the
    failure is not transaction-scoped); ``op`` names the primitive or
    subsystem operation in flight (``"commit"``, ``"initiate"``,
    ``"log.flush"``, …).
    """

    def __init__(self, message="", tid=None, op=None):
        super().__init__(message)
        self.tid = tid
        self.op = op


class TransientError(AssetError):
    """Marker mixin: this failure is worth retrying.

    Subsystems signal retryability by *classification*, not by string or
    flag: a failure class that derives from this marker is absorbed by
    :class:`~repro.resilience.retry.RetryPolicy` by default.  Both the
    storage branch (:class:`TransientIOError`) and the network branch
    (:class:`NetworkError`) opt in, so one policy covers commits whose
    flush hit a device fault *and* fabric sends that timed out, with no
    per-subsystem special cases.
    """


class InvalidStateError(AssetError):
    """An operation was attempted in a transaction state that forbids it.

    For example calling ``begin`` on a transaction that is already running,
    or delegating from a transaction that has terminated.
    """


class UnknownTransactionError(AssetError):
    """A transaction identifier does not name a registered transaction."""

    def __init__(self, tid):
        super().__init__(f"unknown transaction: {tid!r}", tid=tid)


class UnknownObjectError(AssetError):
    """An object identifier does not name a stored object."""

    def __init__(self, oid):
        super().__init__(f"unknown object: {oid!r}")
        self.oid = oid


class ResourceExhaustedError(AssetError):
    """The transaction manager ran out of a configured resource.

    The paper's ``initiate`` returns the null tid when "the number of
    transactions exceed a predetermined number"; this exception carries the
    same meaning for callers who prefer exceptions over null checks.
    """


class TransactionAborted(AssetError):
    """Raised inside a transaction program when its transaction was aborted.

    Runtimes deliver this into a running program whose transaction has been
    aborted from the outside (an abort cascade, a deadlock victim, or an
    explicit ``abort`` call), unwinding the program immediately.
    """

    def __init__(self, tid, reason=""):
        detail = f"transaction {tid!r} aborted"
        if reason:
            detail = f"{detail}: {reason}"
        super().__init__(detail, tid=tid, op="abort")
        self.reason = reason


class DependencyCycleError(AssetError):
    """Forming a dependency would create a forbidden cycle.

    The paper's ``form_dependency`` performs "a check ... to prevent certain
    dependency cycles"; this error reports the offending cycle.
    """

    def __init__(self, cycle):
        path = " -> ".join(repr(t) for t in cycle)
        super().__init__(f"dependency cycle: {path}", op="form_dependency")
        self.cycle = list(cycle)


# ---------------------------------------------------------------------------
# resilience errors (deadlines, leases, admission, retry)
# ---------------------------------------------------------------------------


class DeadlineExceeded(AssetError):
    """A transaction ran past its registered deadline.

    Raised by the resilience layer's bookkeeping; the watchdog uses it as
    the abort reason when it reaps the transaction.
    """

    def __init__(self, tid, deadline, now, op=None):
        super().__init__(
            f"transaction {tid!r} exceeded its deadline"
            f" (deadline tick {deadline}, now {now})",
            tid=tid,
            op=op or "deadline",
        )
        self.deadline = deadline
        self.now = now


class LeaseExpired(AssetError):
    """A transaction's heartbeat lease lapsed.

    The holder stopped renewing within its lease duration — the signature
    of a crashed or wedged participant.  The watchdog aborts the holder
    and any wards (e.g. delegatees) the holder was guarding.
    """

    def __init__(self, tid, last_beat, duration, now, op=None):
        super().__init__(
            f"lease of {tid!r} expired: last heartbeat at tick {last_beat},"
            f" duration {duration}, now {now}",
            tid=tid,
            op=op or "lease",
        )
        self.last_beat = last_beat
        self.duration = duration
        self.now = now


class Backpressure(AssetError):
    """Admission control shed the request; retry later, with backoff.

    The typed counterpart of ``initiate`` returning the null tid: carries
    which gate tripped (``"active"`` or ``"deadline_pressure"``) and the
    measured load so clients can make an informed backoff decision.
    """

    def __init__(self, gate, load, limit, op="initiate"):
        super().__init__(
            f"admission control shed the request: {gate} gate at"
            f" {load} (limit {limit})",
            op=op,
        )
        self.gate = gate
        self.load = load
        self.limit = limit


class RetryExhausted(AssetError):
    """A retry policy ran out of attempt budget.

    ``attempts`` counts what was tried; ``last_error`` is the final
    failure (``None`` when the retried operation signalled failure by
    return value rather than by raising).
    """

    def __init__(self, op, attempts, last_error=None, tid=None):
        detail = f"{op}: retry budget exhausted after {attempts} attempt(s)"
        if last_error is not None:
            detail = f"{detail}; last error: {last_error!r}"
        super().__init__(detail, tid=tid, op=op)
        self.attempts = attempts
        self.last_error = last_error


class SchedulerStalledError(AssetError):
    """No task can make progress and no deadlock cycle explains it.

    Carries a diagnostic payload: ``stalled`` is a list of rows (each with
    a ``describe()`` method, see
    :class:`~repro.runtime.coop.StalledTask`) naming each stuck
    transaction, its status, the request it is parked on, and what it
    blocks on — the information an operator (or a chaos-harness trace)
    needs to see *why* the schedule wedged, without re-running under a
    debugger.
    """

    def __init__(self, why, stalled=()):
        self.why = why
        self.stalled = list(stalled)
        lines = [f"stalled while driving {why}"]
        for entry in self.stalled:
            lines.append("  " + entry.describe())
        super().__init__("\n".join(lines), op="schedule")

    def stalled_tids(self):
        """The tids of every stuck task, in report order."""
        return [entry.tid for entry in self.stalled]


# ---------------------------------------------------------------------------
# storage errors
# ---------------------------------------------------------------------------


class StorageError(AssetError):
    """Base class for storage-manager failures."""


class TransientIOError(StorageError, TransientError):
    """A device operation failed in a way worth retrying.

    The deterministic chaos injector raises this for planned transient
    log-device faults; real deployments would map EIO-with-retry-hint
    style failures here.  Retry policies absorb this class by default.
    """

    def __init__(self, message, op=None):
        super().__init__(message, op=op or "io")


class QuarantinedObjectError(StorageError):
    """An access touched a quarantined (damaged/poisoned) object.

    Torn pages are quarantined structurally at rebuild; the read path
    escalates by poisoning any transaction that touches a quarantined
    object — it must abort rather than propagate garbage.
    """

    def __init__(self, oid, tid=None, op=None):
        super().__init__(
            f"object {oid!r} is quarantined (damaged page)",
            tid=tid,
            op=op or "read",
        )
        self.oid = oid


class LatchError(StorageError):
    """A latch was used incorrectly (released without being held, etc.)."""


class RecoveryError(StorageError):
    """Restart recovery found an inconsistency it could not repair."""


# ---------------------------------------------------------------------------
# network errors (message fabric)
# ---------------------------------------------------------------------------


class NetworkError(TransientError):
    """Base class for message-fabric failures.

    Every network failure is classified transient: on an unreliable
    fabric a drop, a timeout, and a partition are indistinguishable from
    slowness at the sender, and the correct reaction is always the same —
    retry under a bounded policy, then surface the exhaustion.  Carries
    the link endpoints so retries and logs stay attributable.
    """

    def __init__(self, message, src=None, dst=None, tid=None, op=None):
        super().__init__(message, tid=tid, op=op or "net.send")
        self.src = src
        self.dst = dst


class MessageDropped(NetworkError):
    """The fabric dropped a message (injected fault or dead destination)."""

    def __init__(self, src, dst, kind, step=None, tid=None):
        detail = f"message {kind!r} {src}->{dst} dropped"
        if step is not None:
            detail = f"{detail} at step {step}"
        super().__init__(detail, src=src, dst=dst, tid=tid)
        self.kind = kind
        self.step = step


class NetworkTimeout(NetworkError):
    """A request saw no reply within its round budget.

    Indistinguishable from a dropped reply or a slow peer — the caller
    cannot conclude the request did *not* happen, only that it does not
    know.  Protocol layers must treat the outcome as in doubt.
    """

    def __init__(self, src, dst, kind, rounds, tid=None):
        super().__init__(
            f"no reply to {kind!r} {src}->{dst} within {rounds} round(s)",
            src=src,
            dst=dst,
            tid=tid,
            op="net.call",
        )
        self.kind = kind
        self.rounds = rounds


class PartitionedError(NetworkError):
    """The link between two sites is severed by an active partition."""

    def __init__(self, src, dst, tid=None):
        super().__init__(
            f"link {src}->{dst} severed by partition",
            src=src,
            dst=dst,
            tid=tid,
        )
