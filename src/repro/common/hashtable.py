"""A chained hash table, as used for the descriptor tables of section 4.1.

The paper stores transaction descriptors "in a chained hash table based on
the transaction tid", and hashes permit descriptors and dependency edges
*doubly* — once per participating transaction — "so that permissions given
by or given to a transaction can be located efficiently".

A Python ``dict`` would of course serve, but the benchmark for Figure 1
measures the scaling behaviour of the *paper's* structure, so this module
implements an honest chained table with a configurable bucket count and
load-factor-driven resizing.  :class:`DoubleHashIndex` composes two chained
tables to provide the by-left / by-right lookups the paper describes.
"""

from __future__ import annotations


class ChainedHashTable:
    """A hash table with per-bucket chains and automatic resizing.

    Supports the usual mapping operations plus ``buckets`` introspection for
    the descriptor benchmark.  Keys must be hashable.
    """

    _MIN_BUCKETS = 8

    def __init__(self, buckets=None, max_load=4.0):
        if buckets is None:
            buckets = self._MIN_BUCKETS
        if buckets < 1:
            raise ValueError("bucket count must be positive")
        self._buckets = [[] for __ in range(buckets)]
        self._size = 0
        self._max_load = max_load

    def _bucket_for(self, key):
        return self._buckets[hash(key) % len(self._buckets)]

    def _resize(self):
        old_entries = [entry for chain in self._buckets for entry in chain]
        self._buckets = [[] for __ in range(len(self._buckets) * 2)]
        for key, value in old_entries:
            self._bucket_for(key).append((key, value))

    def put(self, key, value):
        """Insert or replace the value stored under ``key``."""
        chain = self._bucket_for(key)
        for index, (existing, __) in enumerate(chain):
            if existing == key:
                chain[index] = (key, value)
                return
        chain.append((key, value))
        self._size += 1
        if self._size > self._max_load * len(self._buckets):
            self._resize()

    def get(self, key, default=None):
        """Return the value under ``key``, or ``default`` if absent."""
        for existing, value in self._bucket_for(key):
            if existing == key:
                return value
        return default

    def get_or_insert(self, key, factory):
        """Return the value under ``key``, inserting ``factory()`` if absent.

        One bucket walk instead of the get-then-put double walk the
        index hot paths would otherwise pay.
        """
        chain = self._bucket_for(key)
        for existing, value in chain:
            if existing == key:
                return value
        value = factory()
        chain.append((key, value))
        self._size += 1
        if self._size > self._max_load * len(self._buckets):
            self._resize()
        return value

    def remove(self, key):
        """Remove and return the value under ``key``; ``None`` if absent."""
        chain = self._bucket_for(key)
        for index, (existing, value) in enumerate(chain):
            if existing == key:
                del chain[index]
                self._size -= 1
                return value
        return None

    def __contains__(self, key):
        return self.get(key, _SENTINEL) is not _SENTINEL

    def __len__(self):
        return self._size

    def __iter__(self):
        for chain in self._buckets:
            yield from (key for key, __ in chain)

    def items(self):
        """Iterate over ``(key, value)`` pairs in bucket order."""
        for chain in self._buckets:
            yield from chain

    def values(self):
        """Iterate over stored values in bucket order."""
        for chain in self._buckets:
            yield from (value for __, value in chain)

    @property
    def bucket_count(self):
        """Number of buckets currently allocated (for benchmarks)."""
        return len(self._buckets)

    def longest_chain(self):
        """Length of the longest bucket chain (for benchmarks)."""
        return max((len(chain) for chain in self._buckets), default=0)


_SENTINEL = object()


class DoubleHashIndex:
    """An index over items keyed by an ordered pair of transactions.

    The paper double-hashes permit descriptors and dependency edges on "the
    tid of the two transactions involved" so that the set given *by* a
    transaction and the set given *to* a transaction can each be located in
    expected O(chain) time.  Items are arbitrary objects; the caller
    supplies the (left, right) key pair at insertion.

    The same (left, right) pair may index many items (e.g. several permits
    between the same two transactions on different objects), so each slot
    holds a list.
    """

    def __init__(self):
        self._by_left = ChainedHashTable()
        self._by_right = ChainedHashTable()

    def add(self, left, right, item):
        """Index ``item`` under the pair ``(left, right)``."""
        for table, key in ((self._by_left, left), (self._by_right, right)):
            table.get_or_insert(key, list).append(item)

    def remove(self, left, right, item):
        """Remove one previously added ``item``; missing items are ignored."""
        for table, key in ((self._by_left, left), (self._by_right, right)):
            slot = table.get(key)
            if slot and item in slot:
                slot.remove(item)
                if not slot:
                    table.remove(key)

    def by_left(self, left):
        """All items whose pair has ``left`` on the left (a fresh list)."""
        return list(self._by_left.get(left) or ())

    def by_right(self, right):
        """All items whose pair has ``right`` on the right (a fresh list)."""
        return list(self._by_right.get(right) or ())

    def involving(self, tid):
        """All items where ``tid`` appears on either side (deduplicated).

        Deduplication is by identity: the only way an item appears twice
        is the very same object indexed under ``(tid, tid)``, and the
        identity set keeps the call linear where the old membership-scan
        approach went quadratic on wide fan-outs (commit/abort cleanup of
        a transaction with thousands of permits).
        """
        seen = set()
        out = []
        for item in self.by_left(tid) + self.by_right(tid):
            if id(item) not in seen:
                seen.add(id(item))
                out.append(item)
        return out

    def __len__(self):
        return sum(len(slot) for __, slot in self._by_left.items())
