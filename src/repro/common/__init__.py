"""Shared infrastructure for the ASSET reproduction.

This package holds the small building blocks every other subsystem uses:
identifier types (:mod:`repro.common.ids`), the exception hierarchy
(:mod:`repro.common.errors`), a logical clock (:mod:`repro.common.clock`),
structured event tracing (:mod:`repro.common.events`), and the EOS-style
shared/exclusive latch (:mod:`repro.common.latch`).
"""

from repro.common.clock import LogicalClock
from repro.common.errors import (
    AssetError,
    DependencyCycleError,
    InvalidStateError,
    LatchError,
    RecoveryError,
    ResourceExhaustedError,
    StorageError,
    TransactionAborted,
    UnknownObjectError,
    UnknownTransactionError,
)
from repro.common.events import Event, EventBus, EventKind
from repro.common.ids import NULL_TID, Lsn, ObjectId, Tid
from repro.common.latch import Latch, LatchMode

__all__ = [
    "AssetError",
    "DependencyCycleError",
    "Event",
    "EventBus",
    "EventKind",
    "InvalidStateError",
    "Latch",
    "LatchError",
    "LatchMode",
    "LogicalClock",
    "Lsn",
    "NULL_TID",
    "ObjectId",
    "RecoveryError",
    "ResourceExhaustedError",
    "StorageError",
    "Tid",
    "TransactionAborted",
    "UnknownObjectError",
    "UnknownTransactionError",
]
