"""Identifier types: transaction ids, object ids, and log sequence numbers.

The paper manipulates three kinds of identifiers:

* ``tid`` — a transaction identifier, returned by ``initiate`` and consumed
  by every other primitive.  The *null tid* signals failure.
* object ids — EOS object identifiers naming persistent objects.
* LSNs — log sequence numbers ordering write-ahead-log records.

All three are small immutable value types so they hash and compare cheaply
and print readably in traces and test failures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True, slots=True)
class Tid:
    """A transaction identifier.

    ``Tid(0)`` is the *null tid* (see :data:`NULL_TID`): ``initiate`` returns
    it on failure and ``parent()`` returns it for top-level transactions.
    The null tid is falsy, so paper-style code such as
    ``if (t = initiate(f)) != NULL`` translates to ``if t:``.
    """

    value: int

    def __bool__(self):
        return self.value != 0

    def __hash__(self):
        # The generated hash allocates and hashes a field tuple per call;
        # tids key every descriptor table and hot-path index, so hash the
        # value directly.
        return hash(self.value)

    def __repr__(self):
        if self.value == 0:
            return "Tid(null)"
        return f"Tid({self.value})"


NULL_TID = Tid(0)
"""The null transaction identifier: falsy, returned on failure."""


@dataclass(frozen=True, order=True, slots=True)
class ObjectId:
    """A persistent object identifier.

    ``name`` exists purely for readability of traces and assertion messages;
    identity (equality/hash) is the ``value`` alone so renaming an object id
    does not change which object it names.
    """

    value: int
    name: str = field(default="", compare=False)

    def __hash__(self):
        return hash(self.value)

    def __repr__(self):
        if self.name:
            return f"ObjectId({self.value}:{self.name})"
        return f"ObjectId({self.value})"


@dataclass(frozen=True, order=True, slots=True)
class Lsn:
    """A log sequence number.  Totally ordered; ``Lsn(0)`` precedes all."""

    value: int

    def __hash__(self):
        return hash(self.value)

    def __repr__(self):
        return f"Lsn({self.value})"


ZERO_LSN = Lsn(0)


class IdGenerator:
    """Hands out monotonically increasing identifiers of a given type.

    One generator instance per id space (tids, object ids, LSNs).  Starts at
    1 so that 0 remains reserved for the null/zero value.
    """

    def __init__(self, factory, start=1):
        self._factory = factory
        self._counter = itertools.count(start)

    def next(self):
        """Return the next identifier in sequence."""
        return self._factory(next(self._counter))


def tid_generator():
    """Return a fresh generator of :class:`Tid` values starting at 1."""
    return IdGenerator(Tid)


def lsn_generator():
    """Return a fresh generator of :class:`Lsn` values starting at 1."""
    return IdGenerator(Lsn)
