"""Value codecs: typed Python values <-> the byte objects storage holds.

The storage layer stores raw bytes (as EOS does).  Examples, models, and
tests mostly manipulate integers, strings, and small records; these
helpers keep that encoding in one place.
"""

from __future__ import annotations

import json


def encode_int(value):
    """Encode an integer (arbitrary size, signed) as bytes."""
    return str(int(value)).encode("ascii")


def decode_int(raw):
    """Decode bytes produced by :func:`encode_int`."""
    return int(raw.decode("ascii"))


def encode_str(value):
    """Encode a string as UTF-8 bytes."""
    return value.encode("utf-8")


def decode_str(raw):
    """Decode UTF-8 bytes into a string."""
    return raw.decode("utf-8")


def encode_json(value):
    """Encode a JSON-serializable value (records, lists) as bytes."""
    return json.dumps(value, sort_keys=True).encode("utf-8")


def decode_json(raw):
    """Decode bytes produced by :func:`encode_json`."""
    return json.loads(raw.decode("utf-8"))
