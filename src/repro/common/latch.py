"""The EOS shared/exclusive latch (paper section 4.1).

EOS latches guard short critical sections on cached objects and control
structures.  The paper specifies three properties this module reproduces:

* two modes, **shared (S)** and **exclusive (X)**;
* an **S-counter** counting current shared holders;
* an **X-bit** set while a writer is waiting, which *blocks new readers*
  from setting the latch, "thus preventing starvation of update
  transactions".

EOS implements latches with an atomic test-and-set spin; under CPython
spinning across threads is wasteful, so acquisition blocks on a condition
variable instead.  The protocol — who may enter when, and the anti-
starvation rule — is identical, and that is what the paper's figure-level
claims depend on.

A non-blocking ``try_acquire`` is also provided; the deterministic
cooperative runtime uses it so that latch waits become scheduler yields.
"""

from __future__ import annotations

import enum
import threading
from contextlib import contextmanager

from repro.common.errors import LatchError


class LatchMode(enum.Enum):
    """Latch acquisition modes."""

    SHARED = "S"
    EXCLUSIVE = "X"


class Latch:
    """An S/X latch with an S-counter and a writer-waiting X-bit.

    Invariants (checked by tests and exposed via properties):

    * ``s_count >= 0``;
    * ``x_held`` implies ``s_count == 0``;
    * while ``x_waiting > 0`` (the X-bit), no *new* reader may enter —
      readers already holding the latch drain normally.
    """

    def __init__(self, name=""):
        self.name = name
        self._cond = threading.Condition()
        self._s_count = 0
        self._x_held = False
        self._x_waiting = 0

    @property
    def s_count(self):
        """Number of shared holders right now."""
        return self._s_count

    @property
    def x_held(self):
        """Whether an exclusive holder is inside."""
        return self._x_held

    @property
    def x_bit(self):
        """The X-bit: true while at least one writer is waiting."""
        return self._x_waiting > 0

    def _may_enter(self, mode):
        if mode is LatchMode.SHARED:
            return not self._x_held and self._x_waiting == 0
        return not self._x_held and self._s_count == 0

    def _enter(self, mode):
        if mode is LatchMode.SHARED:
            self._s_count += 1
        else:
            self._x_held = True

    def try_acquire(self, mode):
        """Attempt to set the latch without blocking.

        Returns ``True`` and enters the latch if permitted, else ``False``.
        A shared attempt fails while the X-bit is set, matching EOS's
        anti-starvation rule.
        """
        with self._cond:
            if not self._may_enter(mode):
                return False
            self._enter(mode)
            return True

    def acquire(self, mode, timeout=None):
        """Set the latch in ``mode``, blocking until permitted.

        Returns ``True`` on success, ``False`` on timeout.  An exclusive
        waiter raises the X-bit for the duration of its wait.
        """
        with self._cond:
            if self._may_enter(mode):
                self._enter(mode)
                return True
            if mode is LatchMode.EXCLUSIVE:
                self._x_waiting += 1
                try:
                    acquired = self._cond.wait_for(
                        lambda: not self._x_held and self._s_count == 0,
                        timeout=timeout,
                    )
                    if acquired:
                        self._x_held = True
                    return acquired
                finally:
                    self._x_waiting -= 1
                    # Our departure may clear the X-bit and unblock readers.
                    self._cond.notify_all()
            acquired = self._cond.wait_for(
                lambda: self._may_enter(LatchMode.SHARED), timeout=timeout
            )
            if acquired:
                self._s_count += 1
            return acquired

    def release(self, mode):
        """Unset the latch previously set in ``mode``."""
        with self._cond:
            if mode is LatchMode.SHARED:
                if self._s_count <= 0:
                    raise LatchError(
                        f"latch {self.name!r}: shared release without holder"
                    )
                self._s_count -= 1
            else:
                if not self._x_held:
                    raise LatchError(
                        f"latch {self.name!r}: exclusive release without holder"
                    )
                self._x_held = False
            self._cond.notify_all()

    @contextmanager
    def held(self, mode):
        """Context manager: hold the latch in ``mode`` for the block."""
        if not self.acquire(mode):
            raise LatchError(f"latch {self.name!r}: acquire timed out")
        try:
            yield self
        finally:
            self.release(mode)

    def __repr__(self):
        return (
            f"Latch({self.name!r}, s={self._s_count},"
            f" x={self._x_held}, x_bit={self.x_bit})"
        )
