"""Structured event tracing.

The transaction manager emits an :class:`Event` for every significant event
in the ACTA sense — initiation, begin, operation invocation, delegation,
permit grants, dependency formation, commit, and abort.  Subscribers include:

* the ACTA history recorder (:mod:`repro.acta.history`), which replays the
  events into formal histories for serializability analysis;
* the benchmark harness, which derives blocked-time and abort-rate metrics;
* tests, which assert on exact event sequences.

Tracing is pull-free and cheap: when no subscriber is attached, ``emit``
only performs a truth test.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """The kinds of significant events the transaction manager emits."""

    INITIATE = "initiate"
    BEGIN = "begin"
    COMPLETE = "complete"

    READ_LOCK = "read_lock"
    WRITE_LOCK = "write_lock"
    LOCK_BLOCKED = "lock_blocked"
    LOCK_SUSPENDED = "lock_suspended"

    READ = "read"
    WRITE = "write"
    OPERATION = "operation"

    DELEGATE = "delegate"
    PERMIT = "permit"
    FORM_DEPENDENCY = "form_dependency"

    PARTIAL_ROLLBACK = "partial_rollback"

    PREPARED = "prepared"

    COMMIT_REQUESTED = "commit_requested"
    COMMIT_BLOCKED = "commit_blocked"
    COMMITTED = "committed"
    ABORT_REQUESTED = "abort_requested"
    ABORTED = "aborted"

    DEADLOCK_VICTIM = "deadlock_victim"


@dataclass(frozen=True)
class Event:
    """One traced event.

    ``tid`` is the transaction the event concerns; ``detail`` carries
    kind-specific payload (object ids, peer tids, dependency types).
    ``tick`` is the logical-clock value at emission, giving a total order.
    """

    kind: EventKind
    tid: object
    tick: int
    detail: dict = field(default_factory=dict)

    def __repr__(self):
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"Event({self.kind.value}, {self.tid!r}, t={self.tick}" + (
            f", {extras})" if extras else ")"
        )


class EventBus:
    """Fan-out of events to any number of subscribers.

    Subscribers are callables taking one :class:`Event`.  Subscription order
    is delivery order.  Thread-safe for the threaded runtime.

    A subscriber may restrict itself to a set of kinds; an emit whose kind
    nobody listens to skips Event construction (and the clock tick)
    entirely, so a narrow subscriber — the resilience DeadlineTable wants
    three kinds out of twenty — does not put the whole event machinery on
    the manager's hot path.
    """

    def __init__(self, clock=None):
        self._subscribers = []  # (callback, frozenset of kinds | None)
        self._watched = frozenset()  # kinds with at least one subscriber
        self._dispatch = {}  # kind -> tuple of callbacks (lazy cache)
        self._clock = clock
        # Clockless buses still owe subscribers the documented "tick
        # gives a total order" contract (the ACTA recorder and span
        # ordering rely on it), so emission falls back to a private
        # monotonic counter rather than stamping every event 0.
        self._fallback_tick = 0
        self._lock = threading.Lock()

    def subscribe(self, callback, kinds=None):
        """Register ``callback`` for every subsequent event (or only the
        event kinds in ``kinds``, when given)."""
        with self._lock:
            self._subscribers.append(
                (callback, frozenset(kinds) if kinds is not None else None)
            )
            self._rewire()
        return callback

    def unsubscribe(self, callback):
        """Stop delivering events to ``callback`` (no-op if unknown).

        Matches by *identity*, and removes only the first (oldest)
        registration: a callback class overriding ``__eq__`` must not be
        able to detach someone else's subscriber, and a twice-subscribed
        callback keeps its second registration.
        """
        with self._lock:
            for index, entry in enumerate(self._subscribers):
                if entry[0] is callback:
                    del self._subscribers[index]
                    break
            self._rewire()

    def _rewire(self):
        """Recompute the emit fast path (caller holds the lock)."""
        self._dispatch = {}
        watched = set()
        for __, kinds in self._subscribers:
            watched |= set(EventKind) if kinds is None else kinds
        self._watched = frozenset(watched)

    def _targets_for(self, kind):
        with self._lock:
            targets = tuple(
                callback
                for callback, kinds in self._subscribers
                if kinds is None or kind in kinds
            )
            self._dispatch[kind] = targets
        return targets

    def emit(self, kind, tid, **detail):
        """Build an :class:`Event` and deliver it to its subscribers.

        The fast path is one set-membership test: a kind nobody watches
        costs the same whether the bus has narrow subscribers or none at
        all, keeping narrow listeners off the manager's hot path.
        """
        if kind not in self._watched:
            return None
        targets = self._dispatch.get(kind)
        if targets is None:
            targets = self._targets_for(kind)
        if self._clock is not None:
            tick = self._clock.tick()
        else:
            with self._lock:
                self._fallback_tick += 1
                tick = self._fallback_tick
        event = Event(kind=kind, tid=tid, tick=tick, detail=detail)
        for callback in targets:
            callback(event)
        return event


class EventRecorder:
    """A simple subscriber that accumulates events into a list.

    Convenient in tests::

        recorder = EventRecorder()
        bus.subscribe(recorder)
        ...
        assert recorder.kinds() == [EventKind.INITIATE, EventKind.BEGIN]
    """

    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)

    def kinds(self):
        """Return the list of event kinds in emission order."""
        return [event.kind for event in self.events]

    def of_kind(self, kind):
        """Return only the events of the given kind, in order."""
        return [event for event in self.events if event.kind is kind]

    def clear(self):
        """Forget all recorded events."""
        self.events.clear()
