"""Structured event tracing.

The transaction manager emits an :class:`Event` for every significant event
in the ACTA sense — initiation, begin, operation invocation, delegation,
permit grants, dependency formation, commit, and abort.  Subscribers include:

* the ACTA history recorder (:mod:`repro.acta.history`), which replays the
  events into formal histories for serializability analysis;
* the benchmark harness, which derives blocked-time and abort-rate metrics;
* tests, which assert on exact event sequences.

Tracing is pull-free and cheap: when no subscriber is attached, ``emit``
only performs a truth test.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """The kinds of significant events the transaction manager emits."""

    INITIATE = "initiate"
    BEGIN = "begin"
    COMPLETE = "complete"

    READ_LOCK = "read_lock"
    WRITE_LOCK = "write_lock"
    LOCK_BLOCKED = "lock_blocked"
    LOCK_SUSPENDED = "lock_suspended"

    READ = "read"
    WRITE = "write"
    OPERATION = "operation"

    DELEGATE = "delegate"
    PERMIT = "permit"
    FORM_DEPENDENCY = "form_dependency"

    PARTIAL_ROLLBACK = "partial_rollback"

    COMMIT_REQUESTED = "commit_requested"
    COMMIT_BLOCKED = "commit_blocked"
    COMMITTED = "committed"
    ABORT_REQUESTED = "abort_requested"
    ABORTED = "aborted"

    DEADLOCK_VICTIM = "deadlock_victim"


@dataclass(frozen=True)
class Event:
    """One traced event.

    ``tid`` is the transaction the event concerns; ``detail`` carries
    kind-specific payload (object ids, peer tids, dependency types).
    ``tick`` is the logical-clock value at emission, giving a total order.
    """

    kind: EventKind
    tid: object
    tick: int
    detail: dict = field(default_factory=dict)

    def __repr__(self):
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"Event({self.kind.value}, {self.tid!r}, t={self.tick}" + (
            f", {extras})" if extras else ")"
        )


class EventBus:
    """Fan-out of events to any number of subscribers.

    Subscribers are callables taking one :class:`Event`.  Subscription order
    is delivery order.  Thread-safe for the threaded runtime.
    """

    def __init__(self, clock=None):
        self._subscribers = []
        self._clock = clock
        self._lock = threading.Lock()

    def subscribe(self, callback):
        """Register ``callback`` to receive every subsequent event."""
        with self._lock:
            self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        """Stop delivering events to ``callback`` (no-op if unknown)."""
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def emit(self, kind, tid, **detail):
        """Build an :class:`Event` and deliver it to all subscribers."""
        if not self._subscribers:
            return None
        tick = self._clock.tick() if self._clock is not None else 0
        event = Event(kind=kind, tid=tid, tick=tick, detail=detail)
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)
        return event


class EventRecorder:
    """A simple subscriber that accumulates events into a list.

    Convenient in tests::

        recorder = EventRecorder()
        bus.subscribe(recorder)
        ...
        assert recorder.kinds() == [EventKind.INITIATE, EventKind.BEGIN]
    """

    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)

    def kinds(self):
        """Return the list of event kinds in emission order."""
        return [event.kind for event in self.events]

    def of_kind(self, kind):
        """Return only the events of the given kind, in order."""
        return [event for event in self.events if event.kind is kind]

    def clear(self):
        """Forget all recorded events."""
        self.events.clear()
