"""Cursor stability (section 3.2.2).

Cursor stability lets a writer ``t_j`` update a record that a reading
transaction ``t_i`` has *finished* reading, before ``t_i`` commits —
giving up repeatable reads for concurrency.  In ASSET terms, before the
cursor moves off a record, the reader executes::

    permit(t_i, record, write)

— the any-transaction form of ``permit``, with no dependency formed, "so
that t_i and t_j may commit in any order".

:func:`cursor_scan` is a body-level scan with that discipline;
:func:`release_record` is the single-record primitive for hand-rolled
cursors.  A repeatable-read scan is just the same loop without the
permit, which is what the EX8 benchmark compares against.
"""

from __future__ import annotations

from repro.core.semantics import WRITE


def release_record(tx, oid):
    """Permit any transaction to write ``oid`` (cursor moved past it)."""
    yield tx.permit(oids=[oid], operations=[WRITE])


def cursor_scan(tx, oids, process=None, stable=True):
    """Scan ``oids`` in order, reading each record.

    With ``stable=True`` (cursor stability) the scan issues the
    write-permit as the cursor leaves each record; with ``stable=False``
    it behaves as a repeatable-read scan (read locks held to commit).
    Returns the list of (processed) values.
    """
    results = []
    for oid in oids:
        value = yield tx.read(oid)
        results.append(process(value) if process is not None else value)
        if stable:
            yield from release_record(tx, oid)
    return results
