"""Contingent transactions (section 3.1.3).

``trans {f1()} else trans {f2()} else ... else trans {fn()}`` — the
alternatives are executed *in the order specified* and **at most one**
commits.  The paper's translation tries each in turn::

    t1 = initiate(f1); begin(t1);
    if (commit(t1)); else { t2 = initiate(f2); ... }

:func:`run_contingent` reproduces the scheme and reports which
alternative (if any) committed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ContingentResult:
    """Outcome of a contingent transaction."""

    committed: bool
    chosen_index: int = -1  # which alternative committed; -1 = none
    tid: object = None
    value: object = None
    attempts: tuple = ()  # tids tried, in order

    def __bool__(self):
        return self.committed


def run_contingent(runtime, alternatives):
    """Try ``alternatives`` (callables or ``(callable, args)`` pairs) in
    order until one commits.  At most one commits."""
    attempts = []
    for index, alternative in enumerate(alternatives):
        function, args = (
            alternative if isinstance(alternative, tuple) else (alternative, ())
        )
        tid = runtime.initiate(function, args=args)
        if not tid:
            continue
        attempts.append(tid)
        if not runtime.begin(tid):
            continue
        if runtime.commit(tid):
            return ContingentResult(
                committed=True,
                chosen_index=index,
                tid=tid,
                value=runtime.result_of(tid),
                attempts=tuple(attempts),
            )
    return ContingentResult(committed=False, attempts=tuple(attempts))
