"""Contingent transactions (section 3.1.3).

``trans {f1()} else trans {f2()} else ... else trans {fn()}`` — the
alternatives are executed *in the order specified* and **at most one**
commits.  The paper's translation tries each in turn::

    t1 = initiate(f1); begin(t1);
    if (commit(t1)); else { t2 = initiate(f2); ... }

:func:`run_contingent` reproduces the scheme and reports which
alternative (if any) committed.

With a :class:`~repro.resilience.RetryPolicy` attached, a *transient*
commit failure (an injected device fault) is retried on the **same**
alternative first — alternative selection is for semantic failure, not
for an fsync hiccup.  Only when the retry budget is exhausted does the
scheme move to the next alternative, recording the give-up in
``exhausted``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import RetryExhausted


@dataclass
class ContingentResult:
    """Outcome of a contingent transaction."""

    committed: bool
    chosen_index: int = -1  # which alternative committed; -1 = none
    tid: object = None
    value: object = None
    attempts: tuple = ()  # tids tried, in order
    exhausted: tuple = ()  # tids abandoned after retry-budget exhaustion

    def __bool__(self):
        return self.committed


def run_contingent(runtime, alternatives, retry=None):
    """Try ``alternatives`` (callables or ``(callable, args)`` pairs) in
    order until one commits.  At most one commits."""
    attempts = []
    exhausted = []
    for index, alternative in enumerate(alternatives):
        function, args = (
            alternative if isinstance(alternative, tuple) else (alternative, ())
        )
        tid = runtime.initiate(function, args=args)
        if not tid:
            continue
        attempts.append(tid)
        if not runtime.begin(tid):
            continue
        if retry is None:
            ok = runtime.commit(tid)
        else:
            try:
                ok = retry.run(
                    lambda: runtime.commit(tid),
                    op=f"contingent.alt{index}",
                    tid=tid,
                )
            except RetryExhausted:
                exhausted.append(tid)
                continue
        if ok:
            return ContingentResult(
                committed=True,
                chosen_index=index,
                tid=tid,
                value=runtime.result_of(tid),
                attempts=tuple(attempts),
                exhausted=tuple(exhausted),
            )
    return ContingentResult(
        committed=False, attempts=tuple(attempts), exhausted=tuple(exhausted)
    )
