"""Relations: ordered collections of records, for cursor-style access.

Section 3.2.2 speaks of a cursor moving "from one record to the next
within a relation".  This module supplies that substrate over plain
objects:

* a relation is a *directory object* holding the ordered record-oid list;
* each record is its own object, so record-level locks and permits work
  exactly as the cursor-stability model requires;
* scans read the directory under a read lock, which doubles as phantom
  protection — an insert needs the directory's write lock, so it cannot
  slip new records into a scan in progress (unless the scanner opts into
  that too, via ``permit``).

All helpers are body-level generator fragments (``yield from``).
"""

from __future__ import annotations

from repro.common.codec import decode_json, encode_json
from repro.models.cursor import release_record

# The oid *values* live in the directory (ObjectId is reconstructed on
# read); names are for trace readability only.
from repro.common.ids import ObjectId


def create_relation(tx, name="relation"):
    """Create an empty relation; returns its directory oid."""
    directory = yield tx.create(encode_json([]), name=f"{name}.dir")
    return directory


def insert_record(tx, relation, value):
    """Append a record holding JSON ``value``; returns the record's oid.

    Takes the directory write lock (serializing inserts and excluding
    concurrent scans — the phantom rule).
    """
    record = yield tx.create(encode_json(value), name="record")
    entries = decode_json((yield tx.read(relation)))
    entries.append(record.value)
    yield tx.write(relation, encode_json(entries))
    return record


def record_oids(tx, relation):
    """The relation's record oids, in insertion order."""
    entries = decode_json((yield tx.read(relation)))
    return [ObjectId(value, name="record") for value in entries]


def scan_relation(tx, relation, process=None, stable=True):
    """Scan all records in order; the §3.2.2 cursor discipline.

    With ``stable=True`` each record is write-permitted to everyone as
    the cursor moves past it (cursor stability); with ``stable=False``
    the scan is repeatable-read.  Either way the directory's read lock
    is held to commit, so the record *set* cannot change underneath the
    scan (no phantoms).
    """
    records = yield from record_oids(tx, relation)
    results = []
    for oid in records:
        raw = yield tx.read(oid)
        value = decode_json(raw)
        results.append(process(value) if process is not None else value)
        if stable:
            yield from release_record(tx, oid)
    return results


def update_record(tx, record, transform):
    """Read-modify-write one record under its write lock."""
    value = decode_json((yield tx.read(record)))
    new_value = transform(value)
    yield tx.write(record, encode_json(new_value))
    return new_value


def delete_record(tx, relation, record):
    """Remove a record from the relation (directory write lock)."""
    entries = decode_json((yield tx.read(relation)))
    if record.value in entries:
        entries.remove(record.value)
        yield tx.write(relation, encode_json(entries))
        return True
    return False
