"""Split and join transactions (section 3.1.5).

A transaction ``t_a`` *splits* into ``t_a`` and ``t_b``: the operations it
performed on an object set ``X`` (up to the split point) are delegated to
``t_b``, and the two then "commit or abort independently".  The paper's
translation::

    s = initiate(f);
    delegate(parent(s), s, X);   // the splitting transaction is s's parent
    begin(s);

Conversely ``join(s, t)``::

    wait(s);
    delegate(s, t);

Both are generator fragments used inside a transaction body with
``yield from``.
"""

from __future__ import annotations


def split_transaction(tx, body, oids, args=()):
    """Split the calling transaction: spawn ``body`` and delegate ``oids``.

    Returns the new transaction's tid.  The caller keeps responsibility
    for everything outside ``oids``; the two halves commit or abort
    independently from here on.
    """
    split = yield tx.initiate(body, args=args)
    if not split:
        return split
    # delegate(parent(s), s, X): parent(s) is the caller.
    yield tx.delegate(split, oids=oids)
    yield tx.begin(split)
    return split


def join_transaction(tx, source, target=None):
    """Join ``source`` into ``target`` (default: the caller).

    Waits for ``source`` to complete, then delegates everything it is
    responsible for.  Returns the paper's ``wait`` result (1 completed,
    0 aborted — in which case nothing was delegated because the abort
    already undid it).
    """
    ok = yield tx.wait(source)
    if ok:
        yield tx.delegate(
            target if target is not None else tx.tid, source=source
        )
    return ok
