"""Cooperating transactions (section 3.2.1).

Two transactions work on a shared (design) object by exchanging permits —
"ping-ponging" — while dependencies keep the outcome coherent::

    form_dependency(CD, t_i, t_j);   // t_j cannot commit before t_i ends
    permit(t_i, t_j, ob, op);        // t_j may conflict with t_i on ob
    ...
    permit(t_j, t_i, ob, op);        // and back

The paper adds that a second CD in the opposite direction would make the
pair commit together or not at all — a CD cycle, which is exactly the
group-commit dependency; :func:`couple_commits` uses GC for that, and the
dependency graph's cycle check is why the literal CD-cycle form is
refused.

Helpers come in two flavours: *body-level* generator fragments
(:func:`cooperate`) yielded from inside a transaction program, and a
*manager-level* call (:func:`establish_cooperation`) a coordinator can
apply to two live transactions.
"""

from __future__ import annotations

from repro.core.dependency import DependencyType


def cooperate(tx, other, oids, operations=None):
    """Body-level: let ``other`` conflict with me on ``oids``.

    Forms the CD (``other`` cannot commit before I terminate) and issues
    the permit — one half of the ping-pong; the peer calls the same
    helper to complete it.
    """
    yield tx.form_dependency(DependencyType.CD, tx.tid, other)
    yield tx.permit(receiver=other, oids=oids, operations=operations)


def establish_cooperation(manager, ti, tj, oids, operations=None,
                          mutual=True):
    """Manager-level: set up (one- or two-way) cooperation between two
    live transactions on ``oids``.

    One-way (``mutual=False``) is the paper's first code fragment; mutual
    cooperation issues both permits and both commit orderings.  The
    second CD would close a cycle, so the mutual form couples the commits
    with GC instead (see :func:`couple_commits`).
    """
    manager.form_dependency(DependencyType.CD, ti, tj)
    manager.permit(ti, tj=tj, oids=oids, operations=operations)
    if mutual:
        manager.permit(tj, tj=ti, oids=oids, operations=operations)
        couple_commits(manager, ti, tj)


def couple_commits(manager, ti, tj):
    """Make two cooperating transactions commit together or not at all.

    The paper: "another CD could be established between t_j and t_i if we
    desire that the two cooperating transactions must both commit or
    neither" — mutual commit dependency *is* group commit, which is how
    it is realized here (a CD cycle would block both forever and is
    refused by the dependency graph).
    """
    return manager.form_dependency(DependencyType.GC, ti, tj)
