"""Nested transactions (section 3.1.4).

The paper's trip example synthesizes, for each subtransaction::

    t1 = initiate(make_airline_reservation);
    permit(self(), t1);          // child may access parent's objects
    begin(t1);
    if (!wait(t1))
        abort(self());           // child failure cancels the parent
    delegate(t1, self());        // child's effects become the parent's
    commit(t1);

Two helpers encode this as composable generator fragments used *inside* a
parent body via ``yield from``:

* :func:`require_subtransaction` — the trip semantics: child failure
  aborts the parent (and the whole nest unwinds via before-image undo);
* :func:`attempt_subtransaction` — the general nested-model semantics:
  subtransactions "can abort without causing the whole transaction to
  abort"; the caller sees ``None`` and decides.

On success the child's updates are delegated to the parent, so they become
permanent only when the topmost root commits — exactly the nested commit
visibility rule.  Arbitrary nesting depth works because each level issues
its own permits and receives its own delegations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChildOutcome:
    """A successfully absorbed subtransaction: its tid and return value.

    Always truthy, so callers can write ``if not (yield from
    attempt_subtransaction(...))``.
    """

    tid: object
    value: object = None

    def __bool__(self):
        return True


def _spawn_child(tx, body, args):
    """initiate + permit + begin, shared by both helpers."""
    child = yield tx.initiate(body, args=args)
    if not child:
        return None
    # permit(self(), t1): the child may perform conflicting operations on
    # anything the parent currently has access to.
    yield tx.permit(receiver=child)
    yield tx.begin(child)
    return child


def attempt_subtransaction(tx, body, args=()):
    """Run ``body`` as a subtransaction; ``None`` if it aborted.

    On success the child's effects are delegated to the parent and a
    :class:`ChildOutcome` carrying the child's return value is returned.
    The parent survives a child abort (failure atomicity *with respect to
    the parent*).
    """
    child = yield from _spawn_child(tx, body, args)
    if child is None:
        return None
    ok = yield tx.wait(child)
    if not ok:
        return None
    yield tx.delegate(tx.tid, source=child)
    yield tx.commit(child)
    value = yield tx.result_of(child)
    return ChildOutcome(tid=child, value=value)


def parallel_subtransactions(tx, bodies, require_all=True):
    """Run sibling subtransactions concurrently.

    The nested model's siblings "execute atomically with respect to"
    each other; nothing requires them to run one at a time.  This helper
    initiates, permits, and begins every child before waiting on any, so
    siblings overlap (on the threaded runtime, genuinely in parallel).

    ``bodies`` is a list of callables or ``(callable, args)`` pairs.
    With ``require_all`` (the trip semantics) any child failure aborts
    the parent; otherwise failed children yield ``None`` entries and the
    survivors' effects are delegated to the parent.  Returns the list of
    :class:`ChildOutcome`/``None``, in order.
    """
    normalized = [
        body if isinstance(body, tuple) else (body, ()) for body in bodies
    ]
    children = []
    for body, args in normalized:
        child = yield tx.initiate(body, args=args)
        if child:
            yield tx.permit(receiver=child)
            yield tx.begin(child)
        children.append(child)

    outcomes = []
    for child in children:
        ok = 0 if not child else (yield tx.wait(child))
        if not ok:
            if require_all:
                # Take down in-flight siblings first (a committed one
                # just answers 0), or they would outlive the parent
                # holding their locks.
                for sibling in children:
                    if sibling and sibling != child:
                        yield tx.abort(sibling)
                yield tx.abort()  # abort(self()): the nest unwinds
                return None
            outcomes.append(None)
            continue
        yield tx.delegate(tx.tid, source=child)
        yield tx.commit(child)
        value = yield tx.result_of(child)
        outcomes.append(ChildOutcome(tid=child, value=value))
    return outcomes


def require_subtransaction(tx, body, args=()):
    """Run ``body`` as a subtransaction; abort the parent if it fails.

    This is the paper's trip translation verbatim: ``if (!wait(t1))
    abort(self())``.  After the abort, the parent program stops (nothing
    after an abort-of-self runs), so the ``return None`` is unreachable in
    practice.
    """
    child = yield from _spawn_child(tx, body, args)
    ok = 0 if child is None else (yield tx.wait(child))
    if not ok:
        yield tx.abort()  # abort(self()) — unwinds the whole nest
        return None
    yield tx.delegate(tx.tid, source=child)
    yield tx.commit(child)
    value = yield tx.result_of(child)
    return ChildOutcome(tid=child, value=value)
