"""Sagas (section 3.1.6).

A saga is a sequence of component transactions ``t_1 ... t_n``, each with
a compensating transaction ``ct_i`` (the final component needs none:
"the commitment of t_n implies the commitment of the whole saga").
Components commit as they go — isolation holds only at component level —
and an aborted saga must run the compensations of its committed prefix in
reverse order::

    t_1 t_2 ... t_k ct_k ct_{k-1} ... ct_1

The paper's translation executes components with the standard
initiate/begin/commit skeleton, counts how many committed, then falls
through a ``switch`` running compensations newest-first, each retried
"until it finally commits".

:func:`run_saga` reproduces this, recording the execution order so tests
can assert the exact ``t_1 ... t_k ct_k ... ct_1`` shape.  A configurable
retry bound guards against a compensation that can never commit (the
paper assumes compensations eventually succeed; we surface violations of
that assumption instead of looping forever).

**Forward recovery** (an extension from the cited SAGAS paper,
Garcia-Molina & Salem 1987): with ``recovery="forward"`` a failed
component is *retried* instead of triggering compensation — appropriate
when every component must eventually succeed (pure sagas).  Retries are
bounded by ``max_forward_retries``; exhausting them falls back to
backward recovery so the saga never partially executes either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AssetError


@dataclass(frozen=True)
class SagaStep:
    """One saga component: a body and (except the last) a compensation."""

    body: object
    compensation: object = None
    args: tuple = ()
    compensation_args: tuple = ()
    name: str = ""

    def label(self, index):
        """A readable name for execution traces."""
        return self.name or f"t{index + 1}"


@dataclass
class SagaResult:
    """Outcome of a saga execution."""

    committed: bool
    completed_steps: int = 0
    compensated_steps: int = 0
    execution_order: list = field(default_factory=list)
    step_tids: list = field(default_factory=list)
    compensation_tids: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def __bool__(self):
        return self.committed


class Saga:
    """A saga definition: ordered steps with compensations.

    ``recovery`` selects the failure discipline: ``"backward"`` (the
    paper's — compensate the committed prefix) or ``"forward"`` (retry
    the failed component up to ``max_forward_retries`` times, falling
    back to backward recovery if it never commits).
    """

    def __init__(self, steps=(), max_compensation_retries=100,
                 recovery="backward", max_forward_retries=10, retry=None):
        if recovery not in ("backward", "forward"):
            raise AssetError(
                f"unknown recovery discipline: {recovery!r}"
            )
        self.steps = list(steps)
        self.max_compensation_retries = max_compensation_retries
        self.recovery = recovery
        self.max_forward_retries = max_forward_retries
        # A repro.resilience.RetryPolicy absorbing *transient* commit
        # failures (injected device faults) at every component and
        # compensation commit.  Orthogonal to the saga-level disciplines
        # above, which handle *semantic* failure (a component that
        # aborts); ``None`` keeps the classic behavior where a transient
        # error propagates.  An exhausted budget raises RetryExhausted.
        self.retry = retry

    def step(self, body, compensation=None, args=(), compensation_args=(),
             name=""):
        """Append a component (fluent: returns self)."""
        self.steps.append(
            SagaStep(
                body=body,
                compensation=compensation,
                args=tuple(args),
                compensation_args=tuple(compensation_args),
                name=name,
            )
        )
        return self

    def validate(self):
        """Every non-final step needs a compensation."""
        for index, step in enumerate(self.steps[:-1]):
            if step.compensation is None:
                raise AssetError(
                    f"saga step {step.label(index)} lacks a compensating"
                    " transaction (only the final step may)"
                )

    def run(self, runtime):
        """Execute the saga on ``runtime``; see :func:`run_saga`."""
        return run_saga(runtime, self)


def _commit_under_policy(runtime, tid, policy, op):
    """Commit ``tid``, retrying transient failures under ``policy``.

    With no policy this is exactly ``runtime.commit(tid)``; with one,
    transient device faults are absorbed up to the attempt budget and
    :class:`~repro.common.errors.RetryExhausted` propagates beyond it.
    """
    if policy is None:
        return runtime.commit(tid)
    return policy.run(lambda: runtime.commit(tid), op=op, tid=tid)


def run_saga(runtime, saga):
    """Execute a :class:`Saga` (or a list of :class:`SagaStep`).

    Components run sequentially; the first component that fails to commit
    stops forward progress and triggers backward recovery: compensations
    of all committed components, in reverse order, each retried until it
    commits.
    """
    if not isinstance(saga, Saga):
        saga = Saga(saga)
    saga.validate()
    result = SagaResult(committed=False)

    # Forward phase: t_1 t_2 ... until one fails to commit (with
    # optional forward-recovery retries of the failing component).
    committed_count = 0
    for index, step in enumerate(saga.steps):
        attempts_left = (
            1 + saga.max_forward_retries
            if saga.recovery == "forward"
            else 1
        )
        step_committed = False
        while attempts_left > 0 and not step_committed:
            attempts_left -= 1
            tid = runtime.initiate(step.body, args=step.args)
            result.step_tids.append(tid)
            if not tid or not runtime.begin(tid):
                continue
            if _commit_under_policy(
                runtime, tid, saga.retry, f"saga.{step.label(index)}"
            ):
                step_committed = True
            elif attempts_left > 0:
                result.execution_order.append(
                    f"retry-{step.label(index)}"
                )
        if not step_committed:
            break
        committed_count += 1
        result.execution_order.append(step.label(index))
        result.values.append(runtime.result_of(tid))
    result.completed_steps = committed_count

    if committed_count == len(saga.steps):
        result.committed = True
        return result

    # Backward phase: ct_k ct_{k-1} ... ct_1, each retried until commit.
    for index in range(committed_count - 1, -1, -1):
        step = saga.steps[index]
        attempts = 0
        while True:
            attempts += 1
            if attempts > saga.max_compensation_retries:
                raise AssetError(
                    f"compensation for {step.label(index)} failed"
                    f" {saga.max_compensation_retries} times; sagas assume"
                    " compensations eventually commit"
                )
            ct = runtime.initiate(
                step.compensation, args=step.compensation_args
            )
            if not ct:
                continue
            runtime.begin(ct)
            if _commit_under_policy(
                runtime, ct, saga.retry, f"saga.c{step.label(index)}"
            ):
                result.compensation_tids.append(ct)
                break
        result.compensated_steps += 1
        result.execution_order.append("c" + step.label(index))
    return result
