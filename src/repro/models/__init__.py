"""The section 3 transaction models, built from the ASSET primitives.

Each module encodes one of the paper's translation schemes — the code the
envisioned O++ compiler would generate — as a reusable library function:

* :mod:`repro.models.atomic` — standard atomic transactions (3.1.1);
* :mod:`repro.models.distributed` — group-commit distributed
  transactions (3.1.2);
* :mod:`repro.models.contingent` — ordered alternatives, at most one
  commits (3.1.3);
* :mod:`repro.models.nested` — nested transactions via permit + delegate
  (3.1.4);
* :mod:`repro.models.split` — split/join transactions (3.1.5);
* :mod:`repro.models.saga` — sagas with compensation (3.1.6);
* :mod:`repro.models.cooperative` — cooperating transactions with permit
  ping-pong (3.2.1);
* :mod:`repro.models.cursor` — cursor stability (3.2.2);
* :mod:`repro.models.relation` — ordered record collections ("records
  within a relation") with phantom-protected scans, the substrate the
  cursor model ranges over.
"""

from repro.models.atomic import run_atomic
from repro.models.contingent import ContingentResult, run_contingent
from repro.models.cooperative import (
    cooperate,
    couple_commits,
    establish_cooperation,
)
from repro.models.cursor import cursor_scan, release_record
from repro.models.distributed import DistributedResult, run_distributed
from repro.models.nested import (
    attempt_subtransaction,
    parallel_subtransactions,
    require_subtransaction,
)
from repro.models.relation import (
    create_relation,
    delete_record,
    insert_record,
    record_oids,
    scan_relation,
    update_record,
)
from repro.models.saga import Saga, SagaResult, SagaStep, run_saga
from repro.models.split import join_transaction, split_transaction

__all__ = [
    "ContingentResult",
    "DistributedResult",
    "Saga",
    "SagaResult",
    "SagaStep",
    "attempt_subtransaction",
    "cooperate",
    "couple_commits",
    "create_relation",
    "cursor_scan",
    "delete_record",
    "establish_cooperation",
    "insert_record",
    "join_transaction",
    "parallel_subtransactions",
    "record_oids",
    "release_record",
    "scan_relation",
    "update_record",
    "require_subtransaction",
    "run_atomic",
    "run_contingent",
    "run_distributed",
    "run_saga",
    "split_transaction",
]
