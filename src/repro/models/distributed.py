"""Distributed transactions (section 3.1.2).

``trans {f1()} || trans {f2()} || ... || trans {fn()}`` — component
transactions execute in parallel and "can only commit as a group".  The
paper's translation initiates every component, forms pairwise group-commit
dependencies against the first::

    form_dependency(GC, t1, t2); ... form_dependency(GC, t1, tn);
    begin(t1, t2, ..., tn);
    commit(t1); commit(t2); ... commit(tn);

``commit(t1)`` alone "actually accomplishes the group commit of all the
transactions in the group"; the remaining commit calls simply report the
outcome already reached.  :func:`run_distributed` reproduces exactly this.

Two targets, one entry point:

* a **runtime** (the single-site fast path) — components share one
  transaction manager and the group commits through the local section
  4.2 machinery, no messages, no 2PC;
* a **cluster** — components are spread round-robin over the sites (or
  placed explicitly with ``placement``), the GC web spans the fabric via
  proxies, and the group commits atomically by presumed-abort two-phase
  commit.

When a later ``initiate`` fails, the components already initiated are
aborted *with a recorded reason* — the paper's translation quietly
assumes initiation cannot fail halfway; a real console must leave an
audit trail, so the result carries ``abort_reason`` and each early
component's abort names the initiate that failed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AssetError
from repro.core.dependency import DependencyType


@dataclass
class DistributedResult:
    """Outcome of a distributed transaction.

    ``tids`` holds local tids on the fast path and
    :class:`~repro.cluster.cluster.SiteRef`\\ s on the cluster path.
    ``abort_reason`` is empty unless group formation itself failed —
    then it records why the already-initiated components were aborted.
    """

    tids: tuple
    committed: bool
    commit_returns: tuple = ()
    values: tuple = ()
    abort_reason: str = ""
    group: object = None  # GroupOutcome on the cluster path

    def __bool__(self):
        return self.committed


def _normalize(bodies):
    return [body if isinstance(body, tuple) else (body, ()) for body in bodies]


def run_distributed(target, bodies, placement=None, coordinator=None):
    """Run ``bodies`` (callables or ``(callable, args)`` pairs) as one
    distributed transaction with group commit/abort semantics.

    ``target`` is a runtime (single-site fast path) or a
    :class:`~repro.cluster.cluster.Cluster`; ``placement`` (cluster
    only) names the site for each body, defaulting to round-robin over
    the sorted site names; ``coordinator`` picks the 2PC coordinator
    site (default: the first component's site).
    """
    normalized = _normalize(bodies)
    if hasattr(target, "group_commit"):  # a Cluster
        return _run_on_cluster(target, normalized, placement, coordinator)
    return _run_on_runtime(target, normalized)


def _abort_initiated(abort, initiated, failed_index, failure):
    """Abort the components initiated before a later initiate failed.

    Every abort carries the reason — a half-formed group must never
    look like a spontaneous disappearance in the log or the event
    stream.  Returns the recorded reason.
    """
    reason = (
        f"distributed group formation failed: initiate of component"
        f" #{failed_index} {failure}; aborting {len(initiated)}"
        f" already-initiated component(s)"
    )
    for earlier in initiated:
        abort(earlier, reason)
    return reason


# ---------------------------------------------------------------------------
# single-site fast path
# ---------------------------------------------------------------------------


def _run_on_runtime(runtime, normalized):
    tids = []
    for index, (function, args) in enumerate(normalized):
        tid = runtime.initiate(function, args=args)
        if not tid:
            reason = _abort_initiated(
                lambda t, r: runtime.manager.abort(t, reason=r),
                tids,
                index,
                "returned the null tid",
            )
            return DistributedResult(
                tids=tuple(tids), committed=False, abort_reason=reason
            )
        tids.append(tid)

    # Pairwise GC dependencies against the first component.
    for other in tids[1:]:
        runtime.manager.form_dependency(DependencyType.GC, tids[0], other)

    runtime.begin(*tids)

    # commit(t1) performs the group commit; the rest just observe.
    returns = tuple(runtime.commit(tid) for tid in tids)
    committed = bool(returns[0])
    values = tuple(runtime.result_of(tid) for tid in tids)
    return DistributedResult(
        tids=tuple(tids),
        committed=committed,
        commit_returns=returns,
        values=values,
    )


# ---------------------------------------------------------------------------
# cluster path
# ---------------------------------------------------------------------------


def _run_on_cluster(cluster, normalized, placement, coordinator):
    site_names = sorted(cluster.sites)
    if placement is None:
        placement = [
            site_names[index % len(site_names)]
            for index in range(len(normalized))
        ]
    refs = []
    for index, ((function, args), site) in enumerate(zip(normalized, placement)):
        try:
            ref = cluster.initiate_at(site, function, args)
            failure = "returned the null tid" if ref is None else None
        except AssetError as exc:
            ref, failure = None, f"failed ({type(exc).__name__}: {exc})"
        if ref is None:
            reason = _abort_initiated(
                lambda r, why: cluster.abort(r, reason=why),
                refs,
                index,
                failure,
            )
            return DistributedResult(
                tids=tuple(refs), committed=False, abort_reason=reason
            )
        refs.append(ref)

    # The paper's pairwise web against the first component; cross-site
    # pairs weave proxies, same-site pairs form plain local edges.
    for other in refs[1:]:
        cluster.form_dependency(DependencyType.GC, refs[0], other)

    for ref in refs:
        cluster.begin(ref)

    # One 2PC representative per site — its local GC group carries any
    # same-site co-members (and every proxy) with it.
    representatives, seen = [], set()
    for ref in refs:
        if ref.site not in seen:
            seen.add(ref.site)
            representatives.append(ref)
    outcome = cluster.group_commit(
        representatives, coordinator=coordinator or refs[0].site
    )
    values = tuple(cluster.result_of(ref) for ref in refs)
    return DistributedResult(
        tids=tuple(refs),
        committed=bool(outcome),
        commit_returns=(outcome,) * len(refs),
        values=values,
        group=outcome,
    )
