"""Distributed transactions (section 3.1.2).

``trans {f1()} || trans {f2()} || ... || trans {fn()}`` — component
transactions execute in parallel and "can only commit as a group".  The
paper's translation initiates every component, forms pairwise group-commit
dependencies against the first::

    form_dependency(GC, t1, t2); ... form_dependency(GC, t1, tn);
    begin(t1, t2, ..., tn);
    commit(t1); commit(t2); ... commit(tn);

``commit(t1)`` alone "actually accomplishes the group commit of all the
transactions in the group"; the remaining commit calls simply report the
outcome already reached.  :func:`run_distributed` reproduces exactly this,
asserting the paper's claim about the later commit invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dependency import DependencyType


@dataclass
class DistributedResult:
    """Outcome of a distributed transaction."""

    tids: tuple
    committed: bool
    commit_returns: tuple = ()
    values: tuple = ()

    def __bool__(self):
        return self.committed


def run_distributed(runtime, bodies):
    """Run ``bodies`` (callables or ``(callable, args)`` pairs) as one
    distributed transaction with group commit/abort semantics."""
    normalized = [
        body if isinstance(body, tuple) else (body, ()) for body in bodies
    ]
    tids = []
    for function, args in normalized:
        tid = runtime.initiate(function, args=args)
        if not tid:
            for earlier in tids:
                runtime.abort(earlier)
            return DistributedResult(tids=tuple(tids), committed=False)
        tids.append(tid)

    # Pairwise GC dependencies against the first component.
    for other in tids[1:]:
        runtime.manager.form_dependency(DependencyType.GC, tids[0], other)

    runtime.begin(*tids)

    # commit(t1) performs the group commit; the rest just observe.
    returns = tuple(runtime.commit(tid) for tid in tids)
    committed = bool(returns[0])
    values = tuple(runtime.result_of(tid) for tid in tids)
    return DistributedResult(
        tids=tuple(tids),
        committed=committed,
        commit_returns=returns,
        values=values,
    )
