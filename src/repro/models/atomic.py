"""Atomic transactions (section 3.1.1).

The O++ compiler takes ``trans { body }`` and emits::

    tid t;
    if ((t = initiate(f)) != NULL) {
        if (begin(t)) {
            commit(t);
        }
    }

:func:`run_atomic` is that exact skeleton.  Serializability comes from the
lock manager (no permits involved); failure atomicity from before-image
undo on abort.
"""

from __future__ import annotations

from repro.runtime.coop import RunResult


def run_atomic(runtime, body, args=()):
    """Execute ``body`` as a standard atomic transaction.

    Returns a :class:`~repro.runtime.coop.RunResult`; ``committed`` is
    False when initiation failed (resource limit), the body aborted
    itself, it was chosen as a deadlock victim, or it raised.
    """
    tid = runtime.initiate(body, args=args)
    if not tid:
        return RunResult(tid=tid, committed=False)
    if not runtime.begin(tid):
        return RunResult(tid=tid, committed=False)
    committed = runtime.commit(tid)
    return RunResult(
        tid=tid, committed=bool(committed), value=runtime.result_of(tid)
    )
