"""repro — a reproduction of ASSET (Biliris et al., SIGMOD 1994).

ASSET is a flexible transaction facility: a small set of primitives
(``initiate``, ``begin``, ``commit``, ``wait``, ``abort``, plus the novel
``delegate``, ``permit``, and ``form_dependency``) from which arbitrary
extended transaction models are composed.  This package provides:

* :mod:`repro.core` — the transaction manager implementing the primitives
  over the section 4 data structures and algorithms;
* :mod:`repro.storage` — the EOS-like storage substrate (pages, buffer
  cache, write-ahead log, recovery);
* :mod:`repro.runtime` — deterministic-cooperative and threaded runtimes
  for transaction programs;
* :mod:`repro.models` — the section 3 transaction models (atomic,
  distributed, contingent, nested, split/join, sagas, cooperative groups,
  cursor stability) built from the primitives;
* :mod:`repro.workflow` — the section 3.2.3 / appendix workflow engine;
* :mod:`repro.lang` — a mini transaction-specification language compiled
  to primitive programs (the paper's envisioned compiler path);
* :mod:`repro.acta` — history recording and serializability analysis in
  the spirit of the ACTA framework the primitives derive from;
* :mod:`repro.bench` — workload generation and the experiment harness.

Quickstart: see ``examples/quickstart.py``.
"""

from repro.common.codec import (
    decode_int,
    decode_json,
    decode_str,
    encode_int,
    encode_json,
    encode_str,
)
from repro.common.errors import AssetError, TransactionAborted
from repro.common.ids import NULL_TID, ObjectId, Tid
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.semantics import READ, WRITE, ConflictTable
from repro.core.status import TransactionStatus
from repro.runtime.coop import CooperativeRuntime, RunResult
from repro.runtime.threaded import ThreadedRuntime
from repro.storage.store import StorageManager

__version__ = "1.0.0"

__all__ = [
    "AssetError",
    "ConflictTable",
    "CooperativeRuntime",
    "DependencyType",
    "NULL_TID",
    "ObjectId",
    "READ",
    "RunResult",
    "StorageManager",
    "ThreadedRuntime",
    "Tid",
    "TransactionAborted",
    "TransactionManager",
    "TransactionStatus",
    "WRITE",
    "decode_int",
    "decode_json",
    "decode_str",
    "encode_int",
    "encode_json",
    "encode_str",
    "__version__",
]
