"""The EOS-lite storage manager.

The paper implements the ASSET primitives "in a modified version of the EOS
storage manager", operating on objects in a shared cache.  This package is
a laptop-scale substitute with the same architecture:

* :mod:`repro.storage.page` — fixed-size slotted pages holding objects;
* :mod:`repro.storage.disk` — page stores (file-backed and in-memory);
* :mod:`repro.storage.buffer` — a buffer cache with pinning and clock
  eviction (the "shared cache" the application operates on directly);
* :mod:`repro.storage.objects` — the object store mapping object ids to
  page slots;
* :mod:`repro.storage.log` — the write-ahead log with before/after images
  exactly as the section 4.2 ``write`` algorithm requires;
* :mod:`repro.storage.recovery` — restart recovery (redo winners, undo
  losers, honouring delegation records);
* :mod:`repro.storage.store` — the :class:`~repro.storage.store.StorageManager`
  facade the transaction manager talks to.
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.storage.log import (
    AbortRecord,
    AfterImageRecord,
    BeforeImageRecord,
    CheckpointRecord,
    CommitRecord,
    DelegateRecord,
    FileLogDevice,
    FlushCoalescer,
    MemoryLogDevice,
    WriteAheadLog,
)
from repro.storage.objects import ObjectStore
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.recovery import RecoveryManager, RecoveryReport
from repro.storage.store import StorageManager

__all__ = [
    "AbortRecord",
    "AfterImageRecord",
    "BeforeImageRecord",
    "BufferPool",
    "CheckpointRecord",
    "CommitRecord",
    "DelegateRecord",
    "FileDiskManager",
    "FileLogDevice",
    "FlushCoalescer",
    "InMemoryDiskManager",
    "MemoryLogDevice",
    "ObjectStore",
    "PAGE_SIZE",
    "Page",
    "RecoveryManager",
    "RecoveryReport",
    "StorageManager",
    "WriteAheadLog",
]
