"""Segmented WAL storage: one log segment and object store per shard.

The sharded engine (:mod:`repro.core.sharded`) gives each shard its own
complete storage stack — disk, buffer pool, object store, and a
:class:`~repro.storage.log.WriteAheadLog` *segment* with its own
:class:`~repro.storage.log.FlushCoalescer` — so group commit proceeds in
parallel per shard.  Three things knit the segments back into one
recoverable log:

* **Global LSNs.**  Every segment draws LSNs from one shared
  :class:`LsnSequencer`, so merging segments by LSN reconstructs the
  global append order (the merge is what restart recovery runs over).
* **The cross-shard commit barrier.**  A commit record lands in the
  transaction's *home* segment (the lowest-numbered shard it touched).
  Before that record can become durable, every *other* touched segment
  is flushed — the WAL rule across segments: images in foreign segments
  must be durable no later than the commit record that makes them
  matter.  A crash between those flushes and the home enrollment leaves
  a prefix of segments durable with no commit record anywhere, and
  recovery undoes the transaction atomically from its before images.
* **Per-segment delegation records.**  ``delegate`` writes one
  :class:`~repro.storage.log.DelegateRecord` into each segment holding
  affected updates, restricted to that segment's oids, so every
  segment's incremental attribution index stays self-contained and the
  merged analysis sees the same re-attributions (disjoint oid sets make
  the records commute).

Crash atomicity for a multi-shard transaction therefore reduces to the
classic single-log argument: the commit record (wherever it lives) is
the commit point; its durability implies durability of all images that
precede it in global LSN order.
"""

from __future__ import annotations

import threading

from repro.common.ids import ObjectId
from repro.core.sharding import ShardRouter, default_shard_count
from repro.storage.log import (
    AfterImageRecord,
    BeforeImageRecord,
    FlushCoalescer,
    MemoryLogDevice,
    WriteAheadLog,
)
from repro.storage.recovery import RecoveryManager
from repro.storage.store import StorageManager


class LsnSequencer:
    """A shared monotone LSN counter for all segments of one log."""

    def __init__(self, start=1):
        self._lock = threading.Lock()
        self._next = start

    def next_value(self):
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def advance_to(self, value):
        """Never hand out an LSN below ``value`` (segment resync)."""
        with self._lock:
            self._next = max(self._next, value)

    @property
    def last_value(self):
        """The most recently issued LSN (0 before the first)."""
        with self._lock:
            return self._next - 1


class SegmentedLog:
    """The single-log view over all segments (merge by global LSN).

    Presents exactly the :class:`~repro.storage.log.WriteAheadLog`
    surface the transaction manager and :class:`RecoveryManager`
    consume: ``records``, ``updates_by``, ``max_tid_value``,
    ``last_lsn_value``, ``flush``, and the compensation writers
    ``log_after_image`` / ``log_abort`` (routed to the owning segment).
    """

    def __init__(self, storage):
        self._storage = storage
        # Observability hook parity with WriteAheadLog: the kit attaches
        # per-segment metrics instead, but callers may still probe this.
        self.metrics = None

    @property
    def segments(self):
        return [shard.log for shard in self._storage.shards]

    def records(self, durable_only=False):
        """All segments' records merged into global LSN order."""
        merged = [
            record
            for segment in self.segments
            for record in segment.records(durable_only=durable_only)
        ]
        merged.sort(key=lambda record: record.lsn.value)
        return merged

    def updates_by(self, tid):
        """Attributed before-images across segments, in global LSN order."""
        merged = [
            record
            for segment in self.segments
            for record in segment.updates_by(tid)
        ]
        merged.sort(key=lambda record: record.lsn.value)
        return merged

    def max_tid_value(self):
        return max(segment.max_tid_value() for segment in self.segments)

    @property
    def last_lsn_value(self):
        """The most recent LSN issued anywhere (savepoint tokens)."""
        return self._storage.sequencer.last_value

    @property
    def flush_count(self):
        return sum(segment.flush_count for segment in self.segments)

    @property
    def group_commit(self):
        """The home-segment coalescers, exposed as a list (telemetry)."""
        return [segment.group_commit for segment in self.segments]

    def log_after_image(self, tid, oid, image):
        """Compensation writer: routed to the object's segment."""
        return self._storage.segment_of(oid).log_after_image(
            tid, oid, image
        )

    def log_abort(self, tid):
        """Abort-completion record (recovery's undo epilogue)."""
        return self._storage.shards[0].log.log_abort(tid)

    def log_workflow(self, wid, kind, payload=b"", tid=None):
        """Workflow transition record, routed to segment 0.

        Workflow records have no object footprint, so they need a fixed
        home; segment 0 plays the same role it does for abort records.
        The segment writer force-flushes, which is what makes the
        attempt-before-commit ordering hold across segments: the attempt
        is durable in segment 0 before the step's commit record can even
        be appended to its home segment.
        """
        return self._storage.shards[0].log.log_workflow(
            wid, kind, payload=payload, tid=tid
        )

    def flush(self):
        for segment in self.segments:
            segment.flush()


class _RoutedObjectStore:
    """Recovery's object-store view: routes installs to shard stores.

    The route source is the log itself: each object's image records live
    in its owning shard's segment, so a per-segment scan rebuilds the
    oid → shard directory even when the stores lost the pages.
    """

    def __init__(self, storage, directory):
        self._storage = storage
        self._directory = directory  # oid value -> shard index

    def _store(self, oid):
        shard = self._directory.get(oid.value)
        if shard is None:
            shard = self._storage.router.shard_of(oid)
        return self._storage.shards[shard].objects

    def exists(self, oid):
        return self._store(oid).exists(oid)

    def read(self, oid):
        return self._store(oid).read(oid)

    def write(self, oid, image):
        return self._store(oid).write(oid, image)

    def delete(self, oid):
        return self._store(oid).delete(oid)

    def create(self, image, oid=None):
        return self._store(oid).create(image, oid=oid)


def _clone_group_commit(group_commit, injector):
    """One coalescer per shard from an int / prototype / None policy."""
    if group_commit is None:
        return None
    if isinstance(group_commit, int):
        return FlushCoalescer(max_commits=group_commit, injector=injector)
    return FlushCoalescer(
        max_commits=group_commit.max_commits,
        max_bytes=group_commit.max_bytes,
        injector=injector,
        health=group_commit.health,
    )


class ShardedStorageManager:
    """A :class:`~repro.storage.store.StorageManager`-shaped facade over
    N per-shard storage stacks with a segmented WAL.

    Object ids are allocated from one global counter (so the sharded
    engine and the single-manager oracle create identical oids), while
    placement follows the router.  ``log_commit`` implements the
    cross-shard barrier described in the module docstring.
    """

    def __init__(
        self,
        n_shards=None,
        group_commit=None,
        injector=None,
        capacity=256,
    ):
        if n_shards is None:
            n_shards = default_shard_count()
        self.injector = injector
        self.sequencer = LsnSequencer()
        self.router = ShardRouter(n_shards)
        self.shards = []
        for index in range(n_shards):
            segment = WriteAheadLog(
                MemoryLogDevice(injector=injector),
                group_commit=_clone_group_commit(group_commit, injector),
                sequencer=self.sequencer,
            )
            self.shards.append(
                StorageManager(
                    log=segment, injector=injector, capacity=capacity
                )
            )
        self.log = SegmentedLog(self)
        self._oid_lock = threading.Lock()
        self._next_oid = 1
        # Which shards each live transaction has logged updates into —
        # the input to the commit barrier.  Guarded by its own lock:
        # writers touch it from shard-latched object ops, the barrier
        # from the mutex-holding commit path.
        self._footprints = {}
        self._footprint_lock = threading.Lock()
        self._quarantine = None
        self._restore_from_segments()

    @property
    def n_shards(self):
        return len(self.shards)

    def segment_of(self, oid):
        return self.shards[self.router.shard_of(oid)].log

    def _note_touch(self, tid, shard):
        with self._footprint_lock:
            self._footprints.setdefault(tid, set()).add(shard)

    def footprint_of(self, tid):
        """Shards ``tid`` has logged updates into (tests and telemetry)."""
        with self._footprint_lock:
            return set(self._footprints.get(tid, ()))

    # -- object operations -------------------------------------------------

    def allocate_object(self, name=""):
        """Reserve the next globally sequential oid and place it.

        Split from :meth:`create_allocated` so the sharded manager can
        learn the home shard — and take its latch — before any shard
        state is touched.  Object ids stay identical to the
        single-manager oracle's because allocation is one global counter.
        """
        with self._oid_lock:
            oid = ObjectId(self._next_oid, name=name)
            self._next_oid += 1
            shard = self.router.place(oid, name=name)
        return oid, shard

    def create_allocated(self, tid, oid, shard, value, name=""):
        """Materialize a pre-allocated object on its home shard."""
        target = self.shards[shard]
        target.objects.create(value, name=name, oid=oid)
        target.log.log_before_image(tid, oid, None)
        target.log.log_after_image(tid, oid, value)
        self._note_touch(tid, shard)
        return oid

    def create_object(self, tid, value, name=""):
        oid, shard = self.allocate_object(name=name)
        return self.create_allocated(tid, oid, shard, value, name=name)

    def read_object(self, tid, oid):
        return self.shards[self.router.shard_of(oid)].read_object(tid, oid)

    def write_object(self, tid, oid, value):
        shard = self.router.shard_of(oid)
        self.shards[shard].write_object(tid, oid, value)
        self._note_touch(tid, shard)

    def delete_object(self, tid, oid):
        shard = self.router.shard_of(oid)
        self.shards[shard].delete_object(tid, oid)
        self._note_touch(tid, shard)

    # -- transaction-manager hooks -----------------------------------------

    def undo(self, tid):
        return self.undo_many([tid])

    def undo_many(self, tids):
        """Coordinated undo in *global* reverse-LSN order across segments."""
        wanted = set(tids)
        updates = [
            record
            for tid in wanted
            for record in self.log.updates_by(tid)
        ]
        updates.sort(key=lambda record: record.lsn.value, reverse=True)
        for record in updates:
            self._install(record.oid, record.image)
            self.segment_of(record.oid).log_after_image(
                record.tid, record.oid, record.image
            )
        return len(updates)

    def undo_to(self, tid, savepoint_lsn_value):
        undone = 0
        for record in reversed(self.log.updates_by(tid)):
            if record.lsn.value <= savepoint_lsn_value:
                continue
            self._install(record.oid, record.image)
            self.segment_of(record.oid).log_after_image(
                tid, record.oid, record.image
            )
            undone += 1
        return undone

    def _install(self, oid, image):
        store = self.shards[self.router.shard_of(oid)].objects
        if image is None:
            if store.exists(oid):
                store.delete(oid)
            return
        if store.exists(oid):
            store.write(oid, image)
        else:
            store.create(image, oid=oid)

    def _home_and_touched(self, tid, group=()):
        with self._footprint_lock:
            touched = set()
            for member in {tid, *group}:
                touched |= self._footprints.get(member, set())
        home = min(touched) if touched else 0
        return home, touched

    def log_commit(self, tid, group=()):
        """The cross-shard barrier + home-segment (possibly group) commit.

        Foreign touched segments flush *eagerly* — their images must be
        durable no later than the commit record.  The home segment's
        commit record then enrolls in that shard's coalescer, so
        single-shard transactions keep pure per-shard group commit and
        only multi-shard transactions pay the barrier.
        """
        home, touched = self._home_and_touched(tid, group)
        for shard in sorted(touched):
            if shard != home:
                self.shards[shard].log.flush()
        record = self.shards[home].log.log_commit(tid, group=group)
        self._forget_footprints(tid, group)
        return record

    def _forget_footprints(self, tid, group=()):
        with self._footprint_lock:
            for member in {tid, *group}:
                self._footprints.pop(member, None)

    def log_abort(self, tid):
        home, __ = self._home_and_touched(tid)
        record = self.shards[home].log.log_abort(tid)
        self._forget_footprints(tid)
        return record

    def log_delegate(self, tid, delegatee, oids):
        """One delegate record per touched segment, that segment's oids."""
        by_shard = {}
        for oid in oids:
            by_shard.setdefault(self.router.shard_of(oid), []).append(oid)
        records = []
        for shard in sorted(by_shard):
            records.append(
                self.shards[shard].log.log_delegate(
                    tid, delegatee, by_shard[shard]
                )
            )
            self._note_touch(delegatee, shard)
        return records

    def log_prepare(self, tid, group=(), gid=0, coordinator="", sites=()):
        """Vote durability across segments: flush all touched, then the
        force-logged prepare record in the home segment."""
        home, touched = self._home_and_touched(tid, group)
        for shard in sorted(touched):
            if shard != home:
                self.shards[shard].log.flush()
        return self.shards[home].log.log_prepare(
            tid, group=group, gid=gid, coordinator=coordinator, sites=sites
        )

    def log_decision(self, tid, gid, verdict, group=(), participants=()):
        home, touched = self._home_and_touched(tid, group)
        for shard in sorted(touched):
            if shard != home:
                self.shards[shard].log.flush()
        record = self.shards[home].log.log_decision(
            tid, gid, verdict, group=group, participants=participants
        )
        if verdict == "commit":
            self._forget_footprints(tid, group)
        return record

    def log_workflow(self, wid, kind, payload=b"", tid=None):
        """Force-log a workflow transition (segment 0, always flushed)."""
        return self.log.log_workflow(wid, kind, payload=payload, tid=tid)

    # -- durability control ------------------------------------------------

    def sync_log(self):
        for shard in self.shards:
            shard.log.flush()

    def checkpoint(self, active=(), truncate=False):
        for shard in self.shards:
            shard.pool.flush_all()
        if truncate and not active:
            for shard in self.shards:
                shard.log.truncate()
        return self.shards[0].log.log_checkpoint(active)

    def crash(self):
        """Crash every shard: volatile pages and unflushed records gone."""
        for shard in self.shards:
            shard.crash()
        with self._footprint_lock:
            self._footprints.clear()

    def recover(self):
        """Segmented restart recovery.

        Rebuild each shard's object table, derive the oid → shard
        directory from the segments (images always land in the owning
        segment), then run the standard repeat-history + undo-losers
        pass over the LSN-merged view with a routed store.
        """
        for shard in self.shards:
            shard.objects._rebuild_table()
        directory = self._directory_from_segments()
        self.router.clear()
        for oid_value, shard in directory.items():
            self.router.place_at(ObjectId(oid_value), shard)
        report = RecoveryManager(
            self.log, _RoutedObjectStore(self, directory)
        ).recover()
        self._restore_oid_counter()
        quarantine = self._quarantine
        if quarantine is not None:
            for shard in self.shards:
                for page_id in shard.objects.damaged_pages:
                    quarantine.note_damaged_page(page_id)
        return report

    def _directory_from_segments(self):
        directory = {}
        for index, shard in enumerate(self.shards):
            for record in shard.log.records():
                if isinstance(
                    record, (BeforeImageRecord, AfterImageRecord)
                ):
                    directory.setdefault(record.oid.value, index)
        return directory

    def _restore_from_segments(self):
        """Resume oid allocation and placement from pre-existing segments."""
        directory = self._directory_from_segments()
        for oid_value, shard in directory.items():
            self.router.place_at(ObjectId(oid_value), shard)
        self._restore_oid_counter()

    def _restore_oid_counter(self):
        with self._oid_lock:
            high = 0
            for shard in self.shards:
                high = max(high, shard.objects._next_oid_value - 1)
            for oid_value in self.router.snapshot():
                high = max(high, oid_value)
            self._next_oid = max(self._next_oid, high + 1)

    def close(self):
        for shard in self.shards:
            shard.close()

    # -- resilience hooks --------------------------------------------------

    @property
    def quarantine(self):
        return self._quarantine

    @quarantine.setter
    def quarantine(self, value):
        self._quarantine = value
        for shard in self.shards:
            shard.quarantine = value

    # -- introspection -----------------------------------------------------

    def object_state(self):
        """Merged {oid value: bytes} across shards (chaos oracles)."""
        state = {}
        for shard in self.shards:
            for oid_value in list(shard.objects._locations):
                if oid_value >> 62:
                    continue  # chunk slots are internal
                state[oid_value] = shard.objects.read(ObjectId(oid_value))
        return state

    def segment_stats(self):
        """Per-shard WAL/pool stats rows (obs collectors, benches)."""
        rows = []
        for index, shard in enumerate(self.shards):
            coalescer = shard.log.group_commit
            rows.append(
                {
                    "shard": index,
                    "appends": len(shard.log.records()),
                    "flushes": shard.log.flush_count,
                    "batches_flushed": (
                        coalescer.batches_flushed if coalescer else 0
                    ),
                    "enrolled_commits": (
                        coalescer.enrolled_total if coalescer else 0
                    ),
                    "objects": len(shard.objects._locations),
                }
            )
        return rows
