"""The write-ahead log.

The section 4.2 ``write`` algorithm logs the *before image* of an object,
performs the write, then logs the *after image*; ``commit`` places a commit
record; ``abort`` scans the log installing before images.  Delegation moves
undo responsibility between transactions, so the log also carries delegate
records — recovery uses them to attribute each update to the transaction
that was responsible for it at the end of the log.

Records are encoded to a compact length-prefixed binary form and can be
persisted to a file (:class:`FileLogDevice`) or kept in memory
(:class:`MemoryLogDevice`).  Either way records round-trip bytes, so crash
simulation replays exactly what a real restart would see.
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass

from repro.common.errors import StorageError, TransientIOError
from repro.common.ids import Lsn, ObjectId, Tid

_HEADER = struct.Struct("<BQQ")  # record type, lsn, tid
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_TYPE_BEFORE = 1
_TYPE_AFTER = 2
_TYPE_COMMIT = 3
_TYPE_ABORT = 4
_TYPE_DELEGATE = 5
_TYPE_CHECKPOINT = 6
_TYPE_PREPARE = 7
_TYPE_DECISION = 8
_TYPE_WORKFLOW = 9
_TYPE_TAKEOVER = 10

_ABSENT = 0xFFFFFFFF  # length marker: image of a not-yet-existing object


@dataclass(frozen=True)
class LogRecord:
    """Base class for all log records."""

    lsn: Lsn
    tid: Tid


@dataclass(frozen=True)
class BeforeImageRecord(LogRecord):
    """Image of ``oid`` before an update by ``tid``.

    ``image is None`` means the object did not exist — the update is a
    creation, and its undo is a deletion.
    """

    oid: ObjectId = None
    image: bytes = None


@dataclass(frozen=True)
class AfterImageRecord(LogRecord):
    """Image of ``oid`` after an update by ``tid``."""

    oid: ObjectId = None
    image: bytes = None


@dataclass(frozen=True)
class CommitRecord(LogRecord):
    """Commitment of ``tid`` and (for group commit) its group members."""

    group: tuple = ()

    def committed_tids(self):
        """All tids committed by this record (the writer plus its group)."""
        return {self.tid, *self.group}


@dataclass(frozen=True)
class AbortRecord(LogRecord):
    """Abort completion of ``tid`` (undo already applied and logged)."""


@dataclass(frozen=True)
class DelegateRecord(LogRecord):
    """``tid`` delegated responsibility for ``oids`` to ``delegatee``."""

    delegatee: Tid = None
    oids: tuple = ()


@dataclass(frozen=True)
class CheckpointRecord(LogRecord):
    """A fuzzy checkpoint marker recording the then-active transactions."""

    active: tuple = ()


@dataclass(frozen=True)
class PrepareRecord(LogRecord):
    """``tid`` (plus its local GC ``group``) voted commit in global ``gid``.

    The presumed-abort vote record: force-written *before* the
    participant's VOTE-COMMIT message leaves the site.  After a crash,
    a prepared-but-undecided transaction is *in doubt* — recovery keeps
    its updates and the site asks ``coordinator`` for the verdict.

    ``sites`` records the full group membership (every participant site
    plus the coordinator) so that an in-doubt participant can run the
    takeover poll when the coordinator is permanently gone — without it,
    a restarted site would only know whom to *ask*, not whom to *become*.
    """

    group: tuple = ()
    gid: int = 0
    coordinator: str = ""
    sites: tuple = ()

    def prepared_tids(self):
        """All tids covered by this vote (the writer plus its group)."""
        return {self.tid, *self.group}


@dataclass(frozen=True)
class DecisionRecord(LogRecord):
    """The coordinator's commit decision for global transaction ``gid``.

    Force-written before any COMMIT message is sent: this record *is*
    the global commit point.  ``tid``/``group`` name the coordinator's
    own local members (recovery treats them as winners), and
    ``participants`` names the remote sites to re-notify after a
    coordinator restart.  Presumed abort means abort decisions are never
    force-logged — no record, no decision, verdict abort.
    """

    gid: int = 0
    verdict: str = "commit"
    group: tuple = ()
    participants: tuple = ()

    def decided_tids(self):
        """The coordinator-local tids this decision commits."""
        return {self.tid, *self.group}


@dataclass(frozen=True)
class WorkflowRecord(LogRecord):
    """One durable workflow-orchestration state transition.

    ``wid`` names the workflow execution, ``kind`` the transition (the
    vocabulary lives in :mod:`repro.workflow.records`), ``payload`` an
    opaque encoded body.  ``tid`` is the step transaction the transition
    concerns, or ``Tid(0)`` for transitions that involve none.

    Workflow records are *orchestration* state: recovery's redo/undo and
    the attribution index ignore them entirely (they carry no images),
    and the workflow engine folds them back into
    ``WorkflowExecution`` state after a restart.  They are always
    force-flushed — the engine's resume protocol depends on every logged
    transition being durable before the action it describes.
    """

    wid: int = 0
    kind: str = ""
    payload: bytes = b""


@dataclass(frozen=True)
class TakeoverRecord(LogRecord):
    """A recovery coordinator's claim over in-doubt global ``gid``.

    Force-written by the site that takes over a group whose coordinator
    stopped heartbeating, *before* the re-derived decision record.  The
    pair (takeover, decision) makes the handover auditable: the
    ``epoch`` is the fencing epoch the new coordinator will stamp on
    every message it sends for the group, and ``old_coordinator`` names
    the site being fenced out.  ``votes`` snapshots the durable
    prepare/decision evidence the taker collected (one ``site:verdict``
    string per polled participant) so a post-mortem can re-check the
    presumed-abort derivation without the other sites' logs.
    """

    gid: int = 0
    epoch: int = 0
    old_coordinator: str = ""
    verdict: str = "abort"
    votes: tuple = ()


def _pack_image(image):
    if image is None:
        return _U32.pack(_ABSENT)
    return _U32.pack(len(image)) + image


def _unpack_image(raw, offset):
    (length,) = _U32.unpack_from(raw, offset)
    offset += _U32.size
    if length == _ABSENT:
        return None, offset
    return bytes(raw[offset : offset + length]), offset + length


def _pack_str(text):
    encoded = text.encode("utf-8")
    return _U32.pack(len(encoded)) + encoded


def _unpack_str(raw, offset):
    (length,) = _U32.unpack_from(raw, offset)
    offset += _U32.size
    return bytes(raw[offset : offset + length]).decode("utf-8"), offset + length


def _pack_tids(tids):
    return _U32.pack(len(tids)) + b"".join(_U64.pack(t.value) for t in tids)


def _unpack_tids(raw, offset):
    (count,) = _U32.unpack_from(raw, offset)
    offset += _U32.size
    tids = []
    for __ in range(count):
        (value,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        tids.append(Tid(value))
    return tuple(tids), offset


def encode_record(record):
    """Serialize a record to bytes (without the device length prefix)."""
    if isinstance(record, BeforeImageRecord):
        rtype, body = _TYPE_BEFORE, _U64.pack(record.oid.value) + _pack_image(
            record.image
        )
    elif isinstance(record, AfterImageRecord):
        rtype, body = _TYPE_AFTER, _U64.pack(record.oid.value) + _pack_image(
            record.image
        )
    elif isinstance(record, CommitRecord):
        body = _U32.pack(len(record.group)) + b"".join(
            _U64.pack(t.value) for t in record.group
        )
        rtype = _TYPE_COMMIT
    elif isinstance(record, AbortRecord):
        rtype, body = _TYPE_ABORT, b""
    elif isinstance(record, DelegateRecord):
        body = (
            _U64.pack(record.delegatee.value)
            + _U32.pack(len(record.oids))
            + b"".join(_U64.pack(o.value) for o in record.oids)
        )
        rtype = _TYPE_DELEGATE
    elif isinstance(record, CheckpointRecord):
        body = _U32.pack(len(record.active)) + b"".join(
            _U64.pack(t.value) for t in record.active
        )
        rtype = _TYPE_CHECKPOINT
    elif isinstance(record, PrepareRecord):
        body = (
            _pack_tids(record.group)
            + _U64.pack(record.gid)
            + _pack_str(record.coordinator)
            + _U32.pack(len(record.sites))
            + b"".join(_pack_str(s) for s in record.sites)
        )
        rtype = _TYPE_PREPARE
    elif isinstance(record, DecisionRecord):
        body = (
            _U64.pack(record.gid)
            + _pack_str(record.verdict)
            + _pack_tids(record.group)
            + _U32.pack(len(record.participants))
            + b"".join(_pack_str(p) for p in record.participants)
        )
        rtype = _TYPE_DECISION
    elif isinstance(record, WorkflowRecord):
        body = (
            _U64.pack(record.wid)
            + _pack_str(record.kind)
            + _pack_image(record.payload)
        )
        rtype = _TYPE_WORKFLOW
    elif isinstance(record, TakeoverRecord):
        body = (
            _U64.pack(record.gid)
            + _U64.pack(record.epoch)
            + _pack_str(record.old_coordinator)
            + _pack_str(record.verdict)
            + _U32.pack(len(record.votes))
            + b"".join(_pack_str(v) for v in record.votes)
        )
        rtype = _TYPE_TAKEOVER
    else:
        raise StorageError(f"unknown record type: {type(record).__name__}")
    return _HEADER.pack(rtype, record.lsn.value, record.tid.value) + body


def decode_record(raw):
    """Reconstruct a record from bytes produced by :func:`encode_record`."""
    rtype, lsn_value, tid_value = _HEADER.unpack_from(raw, 0)
    lsn, tid = Lsn(lsn_value), Tid(tid_value)
    offset = _HEADER.size
    if rtype in (_TYPE_BEFORE, _TYPE_AFTER):
        (oid_value,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        image, offset = _unpack_image(raw, offset)
        cls = BeforeImageRecord if rtype == _TYPE_BEFORE else AfterImageRecord
        return cls(lsn=lsn, tid=tid, oid=ObjectId(oid_value), image=image)
    if rtype == _TYPE_COMMIT:
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        group = []
        for __ in range(count):
            (value,) = _U64.unpack_from(raw, offset)
            offset += _U64.size
            group.append(Tid(value))
        return CommitRecord(lsn=lsn, tid=tid, group=tuple(group))
    if rtype == _TYPE_ABORT:
        return AbortRecord(lsn=lsn, tid=tid)
    if rtype == _TYPE_DELEGATE:
        (delegatee_value,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        oids = []
        for __ in range(count):
            (value,) = _U64.unpack_from(raw, offset)
            offset += _U64.size
            oids.append(ObjectId(value))
        return DelegateRecord(
            lsn=lsn, tid=tid, delegatee=Tid(delegatee_value), oids=tuple(oids)
        )
    if rtype == _TYPE_CHECKPOINT:
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        active = []
        for __ in range(count):
            (value,) = _U64.unpack_from(raw, offset)
            offset += _U64.size
            active.append(Tid(value))
        return CheckpointRecord(lsn=lsn, tid=tid, active=tuple(active))
    if rtype == _TYPE_PREPARE:
        group, offset = _unpack_tids(raw, offset)
        (gid,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        coordinator, offset = _unpack_str(raw, offset)
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        sites = []
        for __ in range(count):
            site, offset = _unpack_str(raw, offset)
            sites.append(site)
        return PrepareRecord(
            lsn=lsn,
            tid=tid,
            group=group,
            gid=gid,
            coordinator=coordinator,
            sites=tuple(sites),
        )
    if rtype == _TYPE_DECISION:
        (gid,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        verdict, offset = _unpack_str(raw, offset)
        group, offset = _unpack_tids(raw, offset)
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        participants = []
        for __ in range(count):
            participant, offset = _unpack_str(raw, offset)
            participants.append(participant)
        return DecisionRecord(
            lsn=lsn,
            tid=tid,
            gid=gid,
            verdict=verdict,
            group=group,
            participants=tuple(participants),
        )
    if rtype == _TYPE_WORKFLOW:
        (wid,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        kind, offset = _unpack_str(raw, offset)
        payload, offset = _unpack_image(raw, offset)
        return WorkflowRecord(
            lsn=lsn, tid=tid, wid=wid, kind=kind, payload=payload
        )
    if rtype == _TYPE_TAKEOVER:
        (gid,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        (epoch,) = _U64.unpack_from(raw, offset)
        offset += _U64.size
        old_coordinator, offset = _unpack_str(raw, offset)
        verdict, offset = _unpack_str(raw, offset)
        (count,) = _U32.unpack_from(raw, offset)
        offset += _U32.size
        votes = []
        for __ in range(count):
            vote, offset = _unpack_str(raw, offset)
            votes.append(vote)
        return TakeoverRecord(
            lsn=lsn,
            tid=tid,
            gid=gid,
            epoch=epoch,
            old_coordinator=old_coordinator,
            verdict=verdict,
            votes=tuple(votes),
        )
    raise StorageError(f"unknown record type byte: {rtype}")


class MemoryLogDevice:
    """Log persistence in memory: a list of encoded records.

    A chaos ``injector`` (:mod:`repro.chaos.faults`) numbers every append
    and flush as an I/O step; the flush step can be *lied about* (lost
    fsync), leaving ``_durable_count`` behind while the caller believes
    the records are safe.
    """

    def __init__(self, injector=None):
        self.injector = injector
        self._records = []
        self._durable_count = 0

    def append(self, raw):
        if self.injector is None:
            self._records.append(bytes(raw))
        else:
            self.injector.log_append(
                len(raw), lambda: self._records.append(bytes(raw))
            )

    def flush(self):
        if self.injector is None:
            self._durable_count = len(self._records)
        else:
            self.injector.log_flush(self._advance_durable)

    def _advance_durable(self):
        self._durable_count = len(self._records)

    def durable_count(self):
        """How many records a restart would actually see (harness peek)."""
        return self._durable_count

    def snapshot(self):
        """Capture the complete device state (for reference replays)."""
        return list(self._records), self._durable_count

    def restore(self, snapshot):
        """Reset the device to a previously captured snapshot."""
        self._records = list(snapshot[0])
        self._durable_count = snapshot[1]

    def read_all(self, durable_only=False):
        """Iterate over encoded records, optionally only the flushed ones."""
        upto = self._durable_count if durable_only else len(self._records)
        return iter(self._records[:upto])

    def crash(self):
        """Drop every record not yet flushed (crash simulation)."""
        del self._records[self._durable_count :]

    def reset(self):
        """Discard the whole log (sharp-checkpoint truncation)."""
        self._records.clear()
        self._durable_count = 0

    def close(self):
        """Nothing to release for the in-memory device."""


class FileLogDevice:
    """Log persistence in a file of length-prefixed records."""

    def __init__(self, path, injector=None):
        self.path = str(path)
        self.injector = injector
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        self._file.seek(0, os.SEEK_END)

    def append(self, raw):
        def do_append():
            self._file.write(_U32.pack(len(raw)))
            self._file.write(raw)

        if self.injector is None:
            do_append()
        else:
            self.injector.log_append(len(raw), do_append)

    def flush(self):
        def do_flush():
            self._file.flush()
            os.fsync(self._file.fileno())

        if self.injector is None:
            do_flush()
        else:
            self.injector.log_flush(do_flush)

    def read_all(self, durable_only=False):
        self._file.flush()
        with open(self.path, "rb") as reader:
            while True:
                prefix = reader.read(_U32.size)
                if len(prefix) < _U32.size:
                    return
                (length,) = _U32.unpack(prefix)
                raw = reader.read(length)
                if len(raw) < length:
                    return  # torn tail write: ignore, as a real restart would
                yield raw

    def reset(self):
        """Discard the whole log (sharp-checkpoint truncation)."""
        self._file.seek(0)
        self._file.truncate()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self):
        self._file.close()


class FlushCoalescer:
    """Group-commit policy: amortise one device flush over many commits.

    A commit record *enrolls* instead of forcing an immediate ``fsync``;
    the batch is flushed once it holds ``max_commits`` enrolled commits
    or once ``max_bytes`` of log have accumulated since the last flush
    (whichever bound trips first).  Between the enrollment and the batch
    flush the commit is *not durable*: a crash in that window loses it,
    exactly as if the commit had never been requested — which is the
    standard group-commit trade (§3.1.2's GC dependency makes grouped
    durability points first-class; the coalescer is the storage-side
    analogue).

    Any explicit :meth:`WriteAheadLog.flush` (checkpoint, close, a
    caller that needs durability *now*) drains the batch.
    """

    def __init__(self, max_commits=8, max_bytes=64 * 1024, injector=None,
                 health=None):
        if max_commits < 1:
            raise StorageError("group-commit batch needs max_commits >= 1")
        if max_bytes < 1:
            raise StorageError("group-commit batch needs max_bytes >= 1")
        self.max_commits = max_commits
        self.max_bytes = max_bytes
        self.injector = injector
        # Degradation breaker (repro.resilience.FlushHealth): while it
        # reports ``degraded`` the coalescer stops batching and every
        # commit flushes synchronously.  ``None`` = always batch.
        self.health = health
        self.pending_commits = 0
        self.pending_bytes = 0
        self.enrolled_total = 0
        self.batches_flushed = 0

    def note_append(self, nbytes):
        """Account appended-but-unflushed log bytes (the size bound)."""
        self.pending_bytes += nbytes

    def enroll_commit(self):
        """Enroll one commit; returns True when the batch must flush.

        The enrollment boundary is a numbered chaos step: between the
        commit record's append and this point the commit exists only in
        volatile state, and a crash here exercises exactly the
        group-commit deferral window.
        """
        if self.injector is not None:
            self.injector.gc_enroll(self.pending_commits)
        self.pending_commits += 1
        self.enrolled_total += 1
        if self.health is not None and self.health.degraded:
            # Degraded mode: the device has been failing (or lying); stop
            # widening the volatile window and flush this commit now.
            return True
        return (
            self.pending_commits >= self.max_commits
            or self.pending_bytes >= self.max_bytes
        )

    def note_flushed(self):
        """The device flushed: the batch (if any) is durable, reset it."""
        if self.pending_commits or self.pending_bytes:
            self.batches_flushed += 1
        self.pending_commits = 0
        self.pending_bytes = 0

    def abandon(self):
        """Drop the pending batch without flushing.

        Called on crash/resync: the enrolled-but-unflushed commits are
        gone from the device, so there is nothing left to make durable.
        """
        self.pending_commits = 0
        self.pending_bytes = 0


class WriteAheadLog:
    """Appends records, assigns LSNs, and replays for abort/recovery.

    Besides the decoded-record cache, the log maintains an *attribution
    index*: per-tid lists of before-image records with delegation
    re-attribution applied as records are appended.  ``updates_by`` and
    ``max_tid_value`` are probes on that index — no full-log scan on
    abort, delegation, or restart (the scan versions survive as test
    oracles).

    ``group_commit`` (a :class:`FlushCoalescer`, or an int shorthand for
    ``FlushCoalescer(max_commits=n)``) defers the per-commit flush into
    size- and count-bounded batches; ``None`` keeps the classic
    flush-every-commit durability.
    """

    def __init__(self, device=None, group_commit=None, sequencer=None):
        self.device = device if device is not None else MemoryLogDevice()
        if isinstance(group_commit, int):
            group_commit = FlushCoalescer(max_commits=group_commit)
        self.group_commit = group_commit
        # A shared LSN sequencer turns this log into one *segment* of a
        # segmented WAL (repro.storage.segmented): every segment draws
        # LSNs from the same counter, so a merge-sort of segments by LSN
        # reconstructs the global append order for recovery.
        self._sequencer = sequencer
        self._lock = threading.Lock()
        self._next_lsn = 1
        self._last_lsn = 0
        self.flush_count = 0
        # Observability hook (repro.obs): a MetricsRegistry/ScopedMetrics
        # installed by ObservabilityKit.attach_log, or None.  The append
        # path pre-binds its two instruments in ``_obs_bound`` so the
        # per-record cost is two attribute bumps, not registry lookups.
        self.metrics = None
        self._obs_bound = None
        # Decoded-record cache: the live system reads the log on every
        # abort (updates_by) and at each delegation; re-decoding the whole
        # device each time would make abort cost quadratic in history.
        self._decoded = []
        self._updates_by_tid = {}
        self._max_tid = 0
        self.resync()

    def resync(self):
        """Rebuild the decoded cache and attribution index from the device.

        Called at open and after anything changes the device underneath
        us (crash simulation dropping unflushed records, truncation by
        another handle).
        """
        with self._lock:
            self._decoded = [
                decode_record(raw) for raw in self.device.read_all()
            ]
            self._updates_by_tid = {}
            self._max_tid = 0
            for record in self._decoded:
                self._next_lsn = max(self._next_lsn, record.lsn.value + 1)
                self._index_record(record)
            self._last_lsn = (
                self._decoded[-1].lsn.value if self._decoded else 0
            )
            if self._sequencer is not None:
                self._sequencer.advance_to(self._next_lsn)
            if self.group_commit is not None:
                self.group_commit.abandon()

    def _index_record(self, record):
        """Fold one appended record into the attribution index.

        Must be called with ``_lock`` held.  Delegation is applied
        *here*, as the record arrives, so attribution queries later are
        pure dict probes — this is what keeps abort cost linear instead
        of quadratic in history length.
        """
        self._max_tid = max(self._max_tid, record.tid.value)
        if isinstance(record, BeforeImageRecord):
            self._updates_by_tid.setdefault(record.tid, []).append(record)
        elif isinstance(record, DelegateRecord):
            self._max_tid = max(self._max_tid, record.delegatee.value)
            mine = self._updates_by_tid.get(record.tid)
            if mine:
                oids = set(record.oids)
                moved = [r for r in mine if r.oid in oids]
                if moved:
                    kept = [r for r in mine if r.oid not in oids]
                    if kept:
                        self._updates_by_tid[record.tid] = kept
                    else:
                        del self._updates_by_tid[record.tid]
                    theirs = self._updates_by_tid.setdefault(
                        record.delegatee, []
                    )
                    theirs.extend(moved)
                    # Moved records interleave with the delegatee's own;
                    # both runs are already LSN-sorted, so this is a
                    # near-linear merge under Timsort.
                    theirs.sort(key=lambda r: r.lsn.value)
        elif isinstance(record, (CommitRecord, PrepareRecord, DecisionRecord)):
            for member in record.group:
                self._max_tid = max(self._max_tid, member.value)
        elif isinstance(record, CheckpointRecord):
            for active in record.active:
                self._max_tid = max(self._max_tid, active.value)

    def _append(self, build):
        with self._lock:
            if self._sequencer is None:
                lsn = Lsn(self._next_lsn)
                self._next_lsn += 1
            else:
                lsn = Lsn(self._sequencer.next_value())
                self._next_lsn = lsn.value + 1
            self._last_lsn = lsn.value
            record = build(lsn)
            encoded = encode_record(record)
            self.device.append(encoded)
            self._decoded.append(record)
            self._index_record(record)
            if self.group_commit is not None:
                self.group_commit.note_append(len(encoded))
            metrics = self.metrics
            if metrics is not None:
                bound = self._obs_bound
                if bound is None or bound[0] is not metrics:
                    bound = self._obs_bound = (
                        metrics,
                        metrics.counter("wal.appends"),
                        metrics.histogram("wal.append_bytes"),
                    )
                bound[1].value += 1
                bound[2].observe(len(encoded))
            return record

    # -- record writers --------------------------------------------------------

    def log_before_image(self, tid, oid, image):
        """Write a before-image record; returns the record."""
        return self._append(
            lambda lsn: BeforeImageRecord(lsn=lsn, tid=tid, oid=oid, image=image)
        )

    def log_after_image(self, tid, oid, image):
        """Write an after-image record; returns the record."""
        return self._append(
            lambda lsn: AfterImageRecord(lsn=lsn, tid=tid, oid=oid, image=image)
        )

    def log_commit(self, tid, group=()):
        """Write a commit record (with group members, if a group commit).

        Without a coalescer the record is flushed immediately (classic
        commit durability).  With one, the commit *enrolls* in the
        current flush batch and the device is only synced when a batch
        bound trips — one ``fsync`` amortised over the whole batch.
        """
        record = self._append(
            lambda lsn: CommitRecord(lsn=lsn, tid=tid, group=tuple(group))
        )
        if self.group_commit is None or self.group_commit.enroll_commit():
            self.flush()
        return record

    def log_abort(self, tid):
        """Write an abort-completion record."""
        return self._append(lambda lsn: AbortRecord(lsn=lsn, tid=tid))

    def log_delegate(self, tid, delegatee, oids):
        """Write a delegation record so recovery can re-attribute undo."""
        return self._append(
            lambda lsn: DelegateRecord(
                lsn=lsn, tid=tid, delegatee=delegatee, oids=tuple(oids)
            )
        )

    def log_prepare(self, tid, group=(), gid=0, coordinator="", sites=()):
        """Force-write a prepare (vote-commit) record.

        Always flushed immediately — the vote must be durable before it
        is sent, whatever the group-commit policy, because the
        participant gives up its right to abort unilaterally the moment
        the coordinator can observe the vote.
        """
        record = self._append(
            lambda lsn: PrepareRecord(
                lsn=lsn,
                tid=tid,
                group=tuple(group),
                gid=gid,
                coordinator=coordinator,
                sites=tuple(sites),
            )
        )
        self.flush()
        return record

    def log_decision(self, tid, gid, verdict, group=(), participants=()):
        """Force-write the coordinator's decision record.

        Commit decisions must hit stable storage before any COMMIT
        message leaves the coordinator — this record is the global
        commit point.  (Presumed abort: callers never force abort
        decisions; the absence of a decision record *is* the abort.)
        """
        record = self._append(
            lambda lsn: DecisionRecord(
                lsn=lsn,
                tid=tid,
                gid=gid,
                verdict=verdict,
                group=tuple(group),
                participants=tuple(participants),
            )
        )
        self.flush()
        return record

    def log_takeover(self, gid, epoch, old_coordinator, verdict, votes=()):
        """Force-write a takeover claim for an in-doubt group.

        Must be durable before the new coordinator publishes the
        re-derived decision: if the taker crashes between the two
        records, restart sees the claim and re-runs the (idempotent)
        derivation under the same fencing epoch instead of inventing a
        fresh one.
        """
        record = self._append(
            lambda lsn: TakeoverRecord(
                lsn=lsn,
                tid=Tid(0),
                gid=gid,
                epoch=epoch,
                old_coordinator=old_coordinator,
                verdict=verdict,
                votes=tuple(votes),
            )
        )
        self.flush()
        return record

    def log_workflow(self, wid, kind, payload=b"", tid=None):
        """Force-write a workflow state-transition record.

        Always flushed immediately, like :meth:`log_prepare`: the
        workflow engine acts on a transition only after it is durable
        (an attempt record must be stable before the step transaction's
        commit record can land), so the resume protocol never observes a
        commit whose attempt evaporated with the crash.
        """
        record = self._append(
            lambda lsn: WorkflowRecord(
                lsn=lsn,
                tid=tid if tid is not None else Tid(0),
                wid=wid,
                kind=kind,
                payload=bytes(payload),
            )
        )
        self.flush()
        return record

    def log_checkpoint(self, active):
        """Write a fuzzy checkpoint marker."""
        record = self._append(
            lambda lsn: CheckpointRecord(
                lsn=lsn, tid=Tid(0), active=tuple(active)
            )
        )
        self.flush()
        return record

    # -- reading ----------------------------------------------------------------

    @property
    def last_lsn_value(self):
        """The LSN of the most recent record (0 when the log is empty).

        With a shared sequencer, LSNs are global and sparse per segment,
        so the segment reports its own most recent record's LSN rather
        than the counter position.
        """
        with self._lock:
            if self._sequencer is not None:
                return self._last_lsn
            return self._next_lsn - 1

    def flush(self):
        """Force the log to stable storage (commit durability point).

        Drains the group-commit batch, if one is pending: everything
        enrolled so far becomes durable with this single device sync.

        When the coalescer carries a :class:`FlushHealth` breaker, every
        flush outcome feeds it: a raised device fault is a failure (and
        re-raises — the batch stays pending for the retry), and a
        *silent* failure is caught by auditing the device's durable
        record count against what was appended (a lying fsync returns
        success while leaving records volatile).
        """
        health = self.group_commit.health if self.group_commit is not None else None
        try:
            self.device.flush()
        except TransientIOError as exc:
            if health is not None:
                health.note_failure(str(exc))
            raise
        self.flush_count += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("wal.flushes")
            if self.group_commit is not None:
                # Batch sizes *at* the flush: how much one fsync bought.
                metrics.observe(
                    "wal.flush_batch_commits", self.group_commit.pending_commits
                )
                metrics.observe(
                    "wal.flush_batch_bytes", self.group_commit.pending_bytes
                )
        if health is not None:
            durable_count = getattr(self.device, "durable_count", None)
            if durable_count is not None:
                with self._lock:
                    appended = len(self._decoded)
                durable = durable_count()
                if durable < appended:
                    health.note_failure(
                        f"lying fsync: {durable} of {appended} records durable"
                    )
                else:
                    health.note_success()
            else:
                health.note_success()
        if self.group_commit is not None:
            self.group_commit.note_flushed()

    def truncate(self):
        """Discard all records (LSNs keep counting upward).

        Only valid at a *sharp checkpoint*: every page flushed and no
        active transactions, so nothing in the log is still needed for
        redo or undo.  The storage manager enforces that precondition.
        """
        with self._lock:
            self.device.reset()
            self._decoded = []
            self._updates_by_tid = {}
            self._max_tid = 0

    def records(self, durable_only=False):
        """All records in LSN order (optionally only durable ones).

        The durable view always re-reads the device (that is the whole
        point — it is what a restart would see); the live view is served
        from the decoded cache.
        """
        if durable_only:
            return [
                decode_record(raw) for raw in self.device.read_all(True)
            ]
        with self._lock:
            return list(self._decoded)

    def max_tid_value(self):
        """The highest transaction id appearing anywhere in the log.

        A restarted transaction manager must allocate tids above this
        value; reusing a logged tid would let a new transaction's abort
        undo (or its commit revive) a previous incarnation's updates.

        Served from the attribution index — maintained at append time and
        rebuilt once by :meth:`resync` — so restart does not rescan the
        whole history (``max_tid_value_scan`` is the oracle).
        """
        with self._lock:
            return self._max_tid

    def updates_by(self, tid):
        """Before-image records currently attributed to ``tid``, in order.

        Applies delegation records: an update whose responsibility was
        delegated away no longer belongs to ``tid``; one delegated to
        ``tid`` does.  This is the log-side view used by recovery; the
        live transaction manager tracks the same attribution in memory.

        Re-attribution happens incrementally as delegate records are
        appended, so this is a dict probe plus a copy of the (usually
        short) per-transaction list — abort and delegation cost stays
        proportional to the transaction's own footprint, not to the full
        log (``updates_by_scan`` is the oracle the property tests check
        against).
        """
        with self._lock:
            return list(self._updates_by_tid.get(tid, ()))

    # -- scan oracles ------------------------------------------------------
    #
    # The pre-index implementations, retained verbatim: the property
    # suite replays `records()` from scratch through these and asserts
    # the incremental index agrees after arbitrary interleavings of
    # writes, delegations, crashes, and resyncs.

    def max_tid_value_scan(self):
        """Full-scan reference implementation of :meth:`max_tid_value`."""
        highest = 0
        for record in self.records():
            highest = max(highest, record.tid.value)
            if isinstance(record, (CommitRecord, PrepareRecord, DecisionRecord)):
                for member in record.group:
                    highest = max(highest, member.value)
            elif isinstance(record, DelegateRecord):
                highest = max(highest, record.delegatee.value)
            elif isinstance(record, CheckpointRecord):
                for active in record.active:
                    highest = max(highest, active.value)
        return highest

    def updates_by_scan(self, tid):
        """Full-scan reference implementation of :meth:`updates_by`."""
        responsible = {}
        mine = []
        for record in self.records():
            if isinstance(record, BeforeImageRecord):
                responsible[record.lsn] = record.tid
                mine.append(record)
            elif isinstance(record, DelegateRecord):
                for update in mine:
                    if (
                        responsible[update.lsn] == record.tid
                        and update.oid in record.oids
                    ):
                        responsible[update.lsn] = record.delegatee
        return [r for r in mine if responsible[r.lsn] == tid]
