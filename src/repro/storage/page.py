"""Fixed-size slotted pages.

Objects live on pages.  A page is a fixed-size byte array with:

* a header: ``magic | page id | slot count | data watermark``;
* object data growing upward from the header;
* a slot directory growing downward from the page end, one entry per
  object: ``(offset, length, object id)``.

Deleted slots keep their directory entry (offset set to the tombstone
value) so slot numbers remain stable; compaction reclaims their data space.
The layout is genuinely byte-level — pages round-trip through ``to_bytes``
/ ``from_bytes`` unchanged, which is what the disk manager and crash
simulation rely on.
"""

from __future__ import annotations

import struct

from repro.common.errors import StorageError

PAGE_SIZE = 4096
_MAGIC = 0xA55E  # "ASSE(T)"

_HEADER = struct.Struct("<HHIQ")  # magic, slot_count, watermark, page_id
_SLOT = struct.Struct("<HHQ")  # offset, length, object id
_TOMBSTONE = 0xFFFF


class PageFullError(StorageError):
    """The page has no room for the requested insertion."""


class Page:
    """One slotted page of ``page_size`` bytes."""

    def __init__(self, page_id, page_size=PAGE_SIZE):
        if page_size < _HEADER.size + _SLOT.size:
            raise ValueError("page size too small for header and one slot")
        self.page_id = page_id
        self.page_size = page_size
        # slots: list of (offset, length, oid_value); offset _TOMBSTONE = dead
        self._slots = []
        self._data = bytearray(page_size)
        self._watermark = _HEADER.size

    # -- space accounting ---------------------------------------------------

    @property
    def slot_count(self):
        """Total directory entries, including tombstones."""
        return len(self._slots)

    @property
    def live_count(self):
        """Directory entries that hold live objects."""
        return sum(1 for offset, __, __ in self._slots if offset != _TOMBSTONE)

    def _directory_start(self):
        return self.page_size - len(self._slots) * _SLOT.size

    def free_space(self):
        """Contiguous free bytes between data area and slot directory."""
        return self._directory_start() - self._watermark

    def reclaimable_space(self):
        """Bytes held by tombstoned slots, recoverable by compaction."""
        return sum(
            length for offset, length, __ in self._slots if offset == _TOMBSTONE
        )

    def fits(self, data_len, reuse_slot=None):
        """Whether an object of ``data_len`` bytes fits (after compaction).

        ``reuse_slot`` names a directory entry whose slot (and, if live, its
        data space) the insertion will reuse; tombstoned entries' space is
        already counted by :meth:`reclaimable_space`.
        """
        slot_cost = 0 if reuse_slot is not None else _SLOT.size
        usable = self.free_space() + self.reclaimable_space()
        if reuse_slot is not None:
            offset, old_len, __ = self._slots[reuse_slot]
            if offset != _TOMBSTONE:
                usable += old_len
        return usable >= data_len + slot_cost

    # -- operations ----------------------------------------------------------

    def insert(self, oid_value, data):
        """Store ``data`` under a new slot; return the slot number.

        Raises :class:`PageFullError` when the object cannot fit even after
        compaction.  Tombstoned slots are reused to keep the directory small.
        """
        reuse = next(
            (
                index
                for index, (offset, __, __) in enumerate(self._slots)
                if offset == _TOMBSTONE
            ),
            None,
        )
        if not self.fits(len(data), reuse_slot=None if reuse is None else reuse):
            raise PageFullError(
                f"page {self.page_id}: no room for {len(data)} bytes"
            )
        if len(data) > self.free_space() - (0 if reuse is not None else _SLOT.size):
            self.compact()
        offset = self._watermark
        self._data[offset : offset + len(data)] = data
        self._watermark += len(data)
        if reuse is not None:
            self._slots[reuse] = (offset, len(data), oid_value)
            return reuse
        self._slots.append((offset, len(data), oid_value))
        return len(self._slots) - 1

    def read(self, slot):
        """Return ``(oid_value, bytes)`` stored in ``slot``."""
        offset, length, oid_value = self._slot_entry(slot)
        return oid_value, bytes(self._data[offset : offset + length])

    def update(self, slot, data):
        """Replace the object in ``slot`` with ``data`` (same oid).

        Updates in place when the new value is no longer than the old one;
        otherwise relocates within the page, compacting if necessary.
        Raises :class:`PageFullError` when the page cannot hold the new
        value.
        """
        offset, length, oid_value = self._slot_entry(slot)
        if len(data) <= length:
            self._data[offset : offset + len(data)] = data
            self._slots[slot] = (offset, len(data), oid_value)
            return
        if not self.fits(len(data), reuse_slot=slot):
            raise PageFullError(
                f"page {self.page_id}: no room to grow slot {slot}"
            )
        self._slots[slot] = (_TOMBSTONE, length, oid_value)
        if len(data) > self.free_space():
            self.compact()
        new_offset = self._watermark
        self._data[new_offset : new_offset + len(data)] = data
        self._watermark += len(data)
        self._slots[slot] = (new_offset, len(data), oid_value)

    def delete(self, slot):
        """Tombstone ``slot``; its space is reclaimed at next compaction."""
        offset, length, oid_value = self._slot_entry(slot)
        self._slots[slot] = (_TOMBSTONE, length, oid_value)

    def compact(self):
        """Rewrite the data area dropping space of tombstoned slots."""
        new_data = bytearray(self.page_size)
        watermark = _HEADER.size
        new_slots = []
        for offset, length, oid_value in self._slots:
            if offset == _TOMBSTONE:
                new_slots.append((_TOMBSTONE, 0, oid_value))
                continue
            new_data[watermark : watermark + length] = self._data[
                offset : offset + length
            ]
            new_slots.append((watermark, length, oid_value))
            watermark += length
        self._data = new_data
        self._slots = new_slots
        self._watermark = watermark

    def items(self):
        """Yield ``(slot, oid_value, bytes)`` for every live object."""
        for slot, (offset, length, oid_value) in enumerate(self._slots):
            if offset != _TOMBSTONE:
                yield slot, oid_value, bytes(self._data[offset : offset + length])

    def _slot_entry(self, slot):
        if not 0 <= slot < len(self._slots):
            raise StorageError(f"page {self.page_id}: no slot {slot}")
        entry = self._slots[slot]
        if entry[0] == _TOMBSTONE:
            raise StorageError(f"page {self.page_id}: slot {slot} is deleted")
        return entry

    # -- serialization -------------------------------------------------------

    def to_bytes(self):
        """Serialize the page to exactly ``page_size`` bytes."""
        raw = bytearray(self._data)
        _HEADER.pack_into(
            raw, 0, _MAGIC, len(self._slots), self._watermark, self.page_id
        )
        cursor = self.page_size
        for offset, length, oid_value in self._slots:
            cursor -= _SLOT.size
            _SLOT.pack_into(raw, cursor, offset, length, oid_value)
        return bytes(raw)

    @classmethod
    def from_bytes(cls, raw, page_size=PAGE_SIZE, default_page_id=0):
        """Reconstruct a page from bytes produced by :meth:`to_bytes`.

        An all-zero image is a freshly allocated page that was never
        written back; it decodes as a valid empty page (with
        ``default_page_id``), which is exactly what a restart sees for
        pages allocated but not yet flushed.
        """
        if len(raw) != page_size:
            raise StorageError(
                f"expected {page_size} bytes, got {len(raw)}"
            )
        magic, slot_count, watermark, page_id = _HEADER.unpack_from(raw, 0)
        if magic == 0 and slot_count == 0 and watermark == 0:
            return cls(default_page_id, page_size=page_size)
        if magic != _MAGIC:
            raise StorageError(f"bad page magic {magic:#x}")
        page = cls(page_id, page_size=page_size)
        page._data = bytearray(raw)
        page._watermark = watermark
        cursor = page_size
        for __ in range(slot_count):
            cursor -= _SLOT.size
            page._slots.append(_SLOT.unpack_from(raw, cursor))
        page.validate()
        return page

    def validate(self):
        """Check the structural invariants every well-formed page holds.

        A torn write (new header and data prefix over an old slot
        directory, or vice versa) usually violates one of them; raising
        :class:`~repro.common.errors.StorageError` here is what lets the
        object-table rebuild quarantine damaged pages instead of serving
        garbage.  Every image produced by :meth:`to_bytes` passes.
        """
        directory_start = self.page_size - len(self._slots) * _SLOT.size
        if not _HEADER.size <= self._watermark <= directory_start:
            raise StorageError(
                f"page {self.page_id}: watermark {self._watermark} outside"
                f" [{_HEADER.size}, {directory_start}] — torn or corrupt"
            )
        for slot, (offset, length, __) in enumerate(self._slots):
            if offset == _TOMBSTONE:
                continue
            if offset < _HEADER.size or offset + length > self._watermark:
                raise StorageError(
                    f"page {self.page_id}: slot {slot} spans"
                    f" [{offset}, {offset + length}) outside the data area"
                    " — torn or corrupt"
                )

    def __repr__(self):
        return (
            f"Page(id={self.page_id}, live={self.live_count},"
            f" free={self.free_space()})"
        )
