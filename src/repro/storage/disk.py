"""Page stores: where pages live when they are not in the buffer cache.

Two implementations share one interface:

* :class:`FileDiskManager` — a single file of fixed-size pages, the
  persistent configuration;
* :class:`InMemoryDiskManager` — a dict of page images, for tests and
  benchmarks that do not want filesystem traffic.

Both support ``snapshot``/``restore`` so the crash-recovery tests can
capture the exact on-disk state at a simulated crash point, and both
accept a chaos ``injector`` (:mod:`repro.chaos.faults`) that numbers every
page write and sync as an I/O step and can crash or tear it.
"""

from __future__ import annotations

import os
import threading

from repro.common.errors import StorageError
from repro.storage.page import PAGE_SIZE


class DiskManager:
    """Interface for page stores; see module docstring."""

    page_size = PAGE_SIZE
    injector = None  # optional chaos FaultInjector

    def allocate_page(self):
        """Reserve a new page id and return it."""
        raise NotImplementedError

    def read_page(self, page_id):
        """Return the raw bytes of ``page_id``."""
        raise NotImplementedError

    def write_page(self, page_id, raw):
        """Durably store ``raw`` as the image of ``page_id``."""
        raise NotImplementedError

    def page_ids(self):
        """Iterate over all allocated page ids."""
        raise NotImplementedError

    def sync(self):
        """Force pending writes to stable storage."""

    def close(self):
        """Release underlying resources."""


class InMemoryDiskManager(DiskManager):
    """A page store backed by a dictionary.

    Fast and convenient for tests; still byte-faithful — it stores the
    serialized page images, not live :class:`Page` objects, so it exercises
    the same serialization paths as the file-backed store.
    """

    def __init__(self, page_size=PAGE_SIZE, injector=None):
        self.page_size = page_size
        self.injector = injector
        self._pages = {}
        self._next_page_id = 1
        self._lock = threading.Lock()

    def allocate_page(self):
        with self._lock:
            page_id = self._next_page_id
            self._next_page_id += 1
            self._pages[page_id] = bytes(self.page_size)
            return page_id

    def read_page(self, page_id):
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"no such page: {page_id}") from None

    def write_page(self, page_id, raw):
        if len(raw) != self.page_size:
            raise StorageError(
                f"page image must be {self.page_size} bytes, got {len(raw)}"
            )
        if page_id not in self._pages:
            raise StorageError(f"no such page: {page_id}")
        if self.injector is None:
            self._pages[page_id] = bytes(raw)
            return

        def install(image):
            # A short image is a torn write: the old tail survives.
            if len(image) < self.page_size:
                image = bytes(image) + self._pages[page_id][len(image):]
            self._pages[page_id] = bytes(image)

        self.injector.page_write(page_id, raw, install)

    def sync(self):
        if self.injector is not None:
            self.injector.page_sync(lambda: None)

    def page_ids(self):
        return sorted(self._pages)

    def snapshot(self):
        """Capture the complete on-disk state (for crash simulation)."""
        with self._lock:
            return dict(self._pages), self._next_page_id

    def restore(self, snapshot):
        """Reset the on-disk state to a previously captured snapshot."""
        with self._lock:
            self._pages, self._next_page_id = dict(snapshot[0]), snapshot[1]


class FileDiskManager(DiskManager):
    """A page store backed by one file of consecutive fixed-size pages.

    Page ``n`` occupies bytes ``[(n-1) * page_size, n * page_size)``.
    Page ids start at 1; id 0 is reserved as "no page".
    """

    def __init__(self, path, page_size=PAGE_SIZE, injector=None):
        self.path = str(path)
        self.page_size = page_size
        self.injector = injector
        self._lock = threading.Lock()
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise StorageError(
                f"{self.path}: size {size} not a multiple of page size"
            )
        self._page_count = size // page_size

    def allocate_page(self):
        with self._lock:
            self._page_count += 1
            page_id = self._page_count
            self._file.seek((page_id - 1) * self.page_size)
            self._file.write(bytes(self.page_size))
            return page_id

    def _check(self, page_id):
        if not 1 <= page_id <= self._page_count:
            raise StorageError(f"no such page: {page_id}")

    def read_page(self, page_id):
        with self._lock:
            self._check(page_id)
            self._file.seek((page_id - 1) * self.page_size)
            return self._file.read(self.page_size)

    def write_page(self, page_id, raw):
        if len(raw) != self.page_size:
            raise StorageError(
                f"page image must be {self.page_size} bytes, got {len(raw)}"
            )
        with self._lock:
            self._check(page_id)

            def install(image):
                # A short image is a torn write: the old tail survives
                # on disk because only the prefix is overwritten.
                self._file.seek((page_id - 1) * self.page_size)
                self._file.write(image)

            if self.injector is None:
                install(raw)
            else:
                self.injector.page_write(page_id, raw, install)

    def page_ids(self):
        return range(1, self._page_count + 1)

    def sync(self):
        with self._lock:

            def do_sync():
                self._file.flush()
                os.fsync(self._file.fileno())

            if self.injector is None:
                do_sync()
            else:
                self.injector.page_sync(do_sync)

    def close(self):
        with self._lock:
            self._file.close()
