"""The object store: persistent objects on slotted pages.

Maps :class:`~repro.common.ids.ObjectId` values to ``(page, slot)``
locations, placing new objects on the first page with room and allocating
pages as needed.  The object table is volatile — on open it is rebuilt by
scanning pages, which is also how restart recovery re-discovers objects
whose creation survived a crash.

Values at this layer are raw bytes; typed views (counters, records, …)
are provided by the semantics layer above.

**Large objects.**  EOS supports objects bigger than a page via segment
chains; so does this store.  A value that does not fit in one page is
split into chunks, each stored under a *chunk id* (the object's id with a
reserved high bit set), and the object's own slot holds a small header
naming the chunk count.  Chunk slots are invisible as objects — the table
rebuild recognizes the high bit — and reads reassemble the chunks in
order.  All of this is below the logging layer, which sees whole values.
"""

from __future__ import annotations

import struct
import threading

from repro.common.errors import StorageError, UnknownObjectError
from repro.common.ids import ObjectId
from repro.storage.page import PageFullError

# Chunk ids: bit 62 set, then 16 bits of chunk index, then the owner id.
_CHUNK_FLAG = 1 << 62
_CHUNK_SHIFT = 44
_OWNER_MASK = (1 << _CHUNK_SHIFT) - 1
# Every stored slot value carries a one-byte tag so an inline value can
# never be mistaken for a large-object header.
_TAG_INLINE = b"\x00"
_TAG_LOB = b"\x01"
_LOB_HEADER = struct.Struct("<II")  # chunk count, total length


def _chunk_id(owner_value, index):
    return _CHUNK_FLAG | (index << _CHUNK_SHIFT) | owner_value


def _is_chunk(oid_value):
    return bool(oid_value & _CHUNK_FLAG)


class ObjectStore:
    """CRUD for byte-valued persistent objects over a buffer pool."""

    def __init__(self, buffer_pool):
        self.pool = buffer_pool
        self._locations = {}
        self._next_oid_value = 1
        self._lock = threading.RLock()
        # Conservative single-page payload bound: page size minus header
        # and slot overhead.  Values above it are chunked.
        self._max_inline = self.pool.disk.page_size - 64
        self._rebuild_table()

    def _rebuild_table(self):
        """Scan all pages rebuilding the object table (open / recovery).

        A page that fails structural validation (a torn write caught by
        :meth:`~repro.storage.page.Page.validate`) is *quarantined*:
        reset to an empty page and skipped.  Repeat-history redo then
        re-creates every object that belongs on it from the log's after
        images — which is why torn data pages are recoverable at all.
        """
        with self._lock:
            self._locations.clear()
            self.damaged_pages = []
            high_water = 0
            for page_id in self.pool.disk.page_ids():
                try:
                    frame = self.pool.fetch(page_id)
                except StorageError:
                    self._quarantine(page_id)
                    continue
                try:
                    for slot, oid_value, __ in frame.page.items():
                        self._locations[oid_value] = (page_id, slot)
                        if not _is_chunk(oid_value):
                            high_water = max(high_water, oid_value)
                finally:
                    self.pool.unpin(page_id)
            self._next_oid_value = high_water + 1

    def _quarantine(self, page_id):
        """Replace a damaged page with a fresh empty one."""
        from repro.storage.page import Page

        self.damaged_pages.append(page_id)
        empty = Page(page_id, page_size=self.pool.disk.page_size)
        self.pool.disk.write_page(page_id, empty.to_bytes())

    # -- lifecycle ------------------------------------------------------------

    def create(self, value, name="", oid=None):
        """Store ``value`` as a new object and return its id.

        ``oid`` forces a specific id (used by recovery to re-create objects
        whose creation committed); it must not already exist.
        """
        with self._lock:
            if oid is None:
                oid = ObjectId(self._next_oid_value, name=name)
                self._next_oid_value += 1
            else:
                if oid.value in self._locations:
                    raise StorageError(f"object already exists: {oid!r}")
                if _is_chunk(oid.value):
                    raise StorageError(f"reserved (chunk) object id: {oid!r}")
                self._next_oid_value = max(self._next_oid_value, oid.value + 1)
            self._store_value(oid.value, value)
            return oid

    def _store_value(self, oid_value, value):
        """Store ``value`` under ``oid_value``, chunking when oversized."""
        if len(value) <= self._max_inline:
            page_id, slot = self._place(oid_value, _TAG_INLINE + value)
            self._locations[oid_value] = (page_id, slot)
            return
        chunk_size = self._max_inline
        chunks = [
            value[start : start + chunk_size]
            for start in range(0, len(value), chunk_size)
        ]
        for index, chunk in enumerate(chunks):
            cid = _chunk_id(oid_value, index)
            page_id, slot = self._place(cid, chunk)
            self._locations[cid] = (page_id, slot)
        header = _TAG_LOB + _LOB_HEADER.pack(len(chunks), len(value))
        page_id, slot = self._place(oid_value, header)
        self._locations[oid_value] = (page_id, slot)

    def _drop_value(self, oid_value):
        """Remove ``oid_value``'s slot and any chunk slots behind it."""
        raw = self._read_slot(oid_value)
        header = self._parse_lob_header(raw)
        page_id, slot = self._locations[oid_value]
        self._delete_slot(page_id, slot)
        del self._locations[oid_value]
        if header is not None:
            count, __ = header
            for index in range(count):
                cid = _chunk_id(oid_value, index)
                chunk_page, chunk_slot = self._locations[cid]
                self._delete_slot(chunk_page, chunk_slot)
                del self._locations[cid]

    def _delete_slot(self, page_id, slot):
        frame = self.pool.fetch(page_id)
        try:
            frame.page.delete(slot)
        finally:
            self.pool.unpin(page_id, dirty=True)

    @staticmethod
    def _parse_lob_header(raw):
        """``(chunk_count, total_len)`` if ``raw`` is a LOB header."""
        if not raw.startswith(_TAG_LOB):
            return None
        count, total = _LOB_HEADER.unpack(raw[1:])
        return count, total

    def _place(self, oid_value, value):
        """Find or allocate a page for the value; return its location."""
        for page_id in self.pool.cached_page_ids():
            frame = self.pool.fetch(page_id)
            inserted = False
            try:
                if frame.page.fits(len(value)):
                    slot = frame.page.insert(oid_value, value)
                    inserted = True
                    return page_id, slot
            except PageFullError:
                pass
            finally:
                self.pool.unpin(page_id, dirty=inserted)
        frame = self.pool.new_page()
        page_id = frame.page.page_id
        try:
            slot = frame.page.insert(oid_value, value)
        except PageFullError:
            self.pool.unpin(page_id, dirty=True)
            raise StorageError(
                f"value of {len(value)} bytes exceeds page capacity"
            ) from None
        self.pool.unpin(page_id, dirty=True)
        return page_id, slot

    def exists(self, oid):
        """Whether ``oid`` names a live object."""
        return oid.value in self._locations and not _is_chunk(oid.value)

    def _read_slot(self, oid_value):
        page_id, slot = self._locations[oid_value]
        frame = self.pool.fetch(page_id)
        try:
            __, value = frame.page.read(slot)
            return value
        finally:
            self.pool.unpin(page_id)

    def read(self, oid):
        """Return the current bytes of ``oid`` (reassembling chunks)."""
        with self._lock:
            self._locate(oid)
            raw = self._read_slot(oid.value)
            header = self._parse_lob_header(raw)
            if header is None:
                return raw[1:]  # strip the inline tag
            count, total = header
            parts = []
            for index in range(count):
                parts.append(self._read_slot(_chunk_id(oid.value, index)))
            value = b"".join(parts)
            if len(value) != total:
                raise StorageError(
                    f"large object {oid!r}: expected {total} bytes,"
                    f" found {len(value)}"
                )
            return value

    def write(self, oid, value):
        """Replace the bytes of ``oid`` with ``value``.

        Handles every size transition (small->small in place when it
        fits, small<->large, large->large) by dropping and re-placing.
        """
        with self._lock:
            self._locate(oid)
            raw = self._read_slot(oid.value)
            header = self._parse_lob_header(raw)
            if header is None and len(value) <= self._max_inline:
                page_id, slot = self._locations[oid.value]
                frame = self.pool.fetch(page_id)
                try:
                    frame.page.update(slot, _TAG_INLINE + value)
                    return
                except PageFullError:
                    pass  # fall through to relocate
                finally:
                    self.pool.unpin(page_id, dirty=True)
            self._drop_value(oid.value)
            self._store_value(oid.value, value)

    def delete(self, oid):
        """Remove ``oid`` (and any chunks) from the store."""
        with self._lock:
            self._locate(oid)
            self._drop_value(oid.value)

    def frame_for(self, oid):
        """Pin and return the frame caching ``oid``'s anchor page.

        The caller owns the pin (and typically the frame latch) and must
        unpin via the pool.  This is the hook the storage manager uses to
        latch an object during a read/write, per the section 4.2
        algorithms; for large objects the anchor (header) frame carries
        the latch for the whole object.
        """
        with self._lock:
            page_id, __ = self._locate(oid)
        return self.pool.fetch(page_id)

    def object_ids(self):
        """All live object id values, ascending (chunks excluded)."""
        with self._lock:
            return sorted(
                value for value in self._locations if not _is_chunk(value)
            )

    def _locate(self, oid):
        if _is_chunk(oid.value):
            raise UnknownObjectError(oid)
        try:
            return self._locations[oid.value]
        except KeyError:
            raise UnknownObjectError(oid) from None

    def __len__(self):
        return sum(1 for value in self._locations if not _is_chunk(value))
