"""The storage manager facade.

:class:`StorageManager` wires the disk manager, buffer cache, object store,
and write-ahead log together and exposes exactly the operations the
transaction manager's section 4.2 algorithms need:

* ``read_object`` — S-latch the object's frame, read, release (the paper's
  ``read`` steps 2-4; step 1, locking, is the transaction manager's job);
* ``write_object`` — X-latch, log before image, write, log after image,
  release (the paper's ``write`` steps 2-6);
* ``create_object`` / ``delete_object`` — updates with an absent image on
  one side;
* ``undo`` — install before images for an aborting transaction, logging
  compensation records (used by ``abort`` step 2);
* ``log_commit`` / ``log_delegate`` — the log entries ``commit`` step 4 and
  ``delegate`` require;
* ``crash`` / ``recover`` — crash simulation and restart recovery;
* ``checkpoint`` — flush pages and, when quiescent, reset the log.
"""

from __future__ import annotations

from repro.common.latch import LatchMode
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.log import WriteAheadLog
from repro.storage.objects import ObjectStore
from repro.storage.recovery import RecoveryManager


class StorageManager:
    """Facade over pages, cache, objects, and the log.

    ``group_commit`` (an int batch size or a
    :class:`~repro.storage.log.FlushCoalescer`) enables commit flush
    coalescing on a default-constructed log: N commits share one device
    ``fsync``.  When an explicit ``log`` is supplied its own policy
    wins.
    """

    def __init__(
        self,
        disk=None,
        log=None,
        capacity=256,
        group_commit=None,
        injector=None,
    ):
        self.injector = injector
        if disk is None:
            disk = InMemoryDiskManager(injector=injector)
        self.disk = disk
        if log is None:
            from repro.storage.log import MemoryLogDevice

            log = WriteAheadLog(
                MemoryLogDevice(injector=injector), group_commit=group_commit
            )
        self.log = log
        if injector is not None and self.log.group_commit is not None:
            self.log.group_commit.injector = injector
        self.pool = BufferPool(self.disk, capacity=capacity, injector=injector)
        # Read-path quarantine (repro.resilience): objects registered
        # here poison any transaction that touches them.  ``None`` means
        # the escalation is off and damaged pages only surface via the
        # structural quarantine in ObjectStore._rebuild_table.
        self.quarantine = None
        # The WAL rule: no dirty page reaches disk before the log records
        # describing its updates are durable.  Evictions and flushes force
        # the log first (chaos crash sweeps fail without this ordering).
        self.pool.wal_flush = self.log.flush
        self.objects = ObjectStore(self.pool)

    # -- object operations (latched + logged) ----------------------------------

    def create_object(self, tid, value, name=""):
        """Create an object on behalf of ``tid``; returns its id.

        Logged as an update whose before image is absent, so aborting
        ``tid`` deletes the object again.
        """
        oid = self.objects.create(value, name=name)
        self.log.log_before_image(tid, oid, None)
        self.log.log_after_image(tid, oid, value)
        return oid

    def read_object(self, tid, oid):
        """Read ``oid`` under an S latch (lock already held by ``tid``)."""
        quarantine = self.quarantine
        if quarantine is not None and quarantine.objects:
            quarantine.check(tid, oid, op="read")
        frame = self.objects.frame_for(oid)
        try:
            with frame.latch.held(LatchMode.SHARED):
                return self.objects.read(oid)
        finally:
            self.pool.unpin(frame.page.page_id)

    def write_object(self, tid, oid, value):
        """Write ``oid`` under an X latch, logging before and after images."""
        quarantine = self.quarantine
        if quarantine is not None and quarantine.objects:
            quarantine.check(tid, oid, op="write")
        frame = self.objects.frame_for(oid)
        try:
            with frame.latch.held(LatchMode.EXCLUSIVE):
                before = self.objects.read(oid)
                self.log.log_before_image(tid, oid, before)
                self.objects.write(oid, value)
                self.log.log_after_image(tid, oid, value)
        finally:
            self.pool.unpin(frame.page.page_id, dirty=True)

    def delete_object(self, tid, oid):
        """Delete ``oid``, logging images so the deletion is undoable."""
        frame = self.objects.frame_for(oid)
        try:
            with frame.latch.held(LatchMode.EXCLUSIVE):
                before = self.objects.read(oid)
                self.log.log_before_image(tid, oid, before)
                self.objects.delete(oid)
                self.log.log_after_image(tid, oid, None)
        finally:
            self.pool.unpin(frame.page.page_id, dirty=True)

    # -- transaction-manager hooks ----------------------------------------------

    def undo(self, tid):
        """Install before images for every update ``tid`` is responsible for.

        Scans the log (as the paper's abort step 2 does), honouring
        delegation, installs images newest-first, and logs each restoration
        as a compensation after-image.  Returns the number of undone
        updates.
        """
        return self.undo_many([tid])

    def undo_many(self, tids):
        """Undo several transactions' updates in one coordinated pass.

        An abort cascade (AD chains, GC groups) takes down transactions
        whose updates interleave on shared objects; undoing each member
        separately could re-install one member's aborted values over
        another's undo.  Merging all their updates and installing before
        images in global reverse-LSN order restores exactly the state the
        group found.  Returns the number of undone updates.
        """
        wanted = set(tids)
        updates = [
            record
            for tid in wanted
            for record in self.log.updates_by(tid)
        ]
        updates.sort(key=lambda record: record.lsn.value, reverse=True)
        for record in updates:
            self._install(record.oid, record.image)
            self.log.log_after_image(record.tid, record.oid, record.image)
        return len(updates)

    def undo_to(self, tid, savepoint_lsn_value):
        """Partial rollback: undo ``tid``'s updates newer than a savepoint.

        Installs before images (newest first) for updates ``tid`` is
        responsible for whose LSN exceeds ``savepoint_lsn_value``,
        logging each restoration as a compensation after-image.  Locks
        are untouched — savepoint semantics, not abort.  Returns the
        number of undone updates.
        """
        undone = 0
        for record in reversed(self.log.updates_by(tid)):
            if record.lsn.value <= savepoint_lsn_value:
                continue
            self._install(record.oid, record.image)
            self.log.log_after_image(tid, record.oid, record.image)
            undone += 1
        return undone

    def _install(self, oid, image):
        if image is None:
            if self.objects.exists(oid):
                self.objects.delete(oid)
            return
        if self.objects.exists(oid):
            self.objects.write(oid, image)
        else:
            self.objects.create(image, oid=oid)

    def log_commit(self, tid, group=()):
        """Durably log the commit of ``tid`` (plus group members)."""
        return self.log.log_commit(tid, group=group)

    def log_abort(self, tid):
        """Log completion of ``tid``'s abort."""
        return self.log.log_abort(tid)

    def log_delegate(self, tid, delegatee, oids):
        """Log a delegation so recovery attributes undo correctly."""
        return self.log.log_delegate(tid, delegatee, oids)

    def log_prepare(self, tid, group=(), gid=0, coordinator="", sites=()):
        """Force-log a distributed-commit vote (always flushed)."""
        return self.log.log_prepare(
            tid, group=group, gid=gid, coordinator=coordinator, sites=sites
        )

    def log_decision(self, tid, gid, verdict, group=(), participants=()):
        """Force-log a coordinator commit decision (always flushed)."""
        return self.log.log_decision(
            tid, gid, verdict, group=group, participants=participants
        )

    def log_takeover(self, gid, epoch, old_coordinator, verdict, votes=()):
        """Force-log a recovery coordinator's takeover claim."""
        return self.log.log_takeover(
            gid, epoch, old_coordinator, verdict, votes=votes
        )

    def log_workflow(self, wid, kind, payload=b"", tid=None):
        """Force-log a workflow state transition (always flushed)."""
        return self.log.log_workflow(wid, kind, payload=payload, tid=tid)

    # -- durability control --------------------------------------------------------

    def sync_log(self):
        """Force the log durable *now*, draining any group-commit batch.

        The escape hatch for callers that cannot tolerate the coalescer's
        deferral window (e.g. before acknowledging a client).  A no-op
        flush when nothing is pending.
        """
        self.log.flush()

    def checkpoint(self, active=(), truncate=False):
        """Flush all dirty pages and write a checkpoint marker.

        With ``truncate=True`` and no active transactions, this is a
        *sharp* checkpoint: every effect in the log is already on disk,
        so the log is discarded — bounding restart-recovery time (the
        EX13 ablation benchmark measures the effect).
        """
        self.pool.flush_all()
        if truncate and not active:
            self.log.truncate()
        return self.log.log_checkpoint(active)

    def crash(self):
        """Simulate a crash: lose the cache and all unflushed log records."""
        self.pool.drop_all()
        device_crash = getattr(self.log.device, "crash", None)
        if device_crash is not None:
            device_crash()
        self.log.resync()  # the decoded cache must match the device now

    def recover(self):
        """Rebuild the object table and run restart recovery."""
        self.objects._rebuild_table()
        report = RecoveryManager(self.log, self.objects).recover()
        if self.quarantine is not None:
            # Escalate the structural torn-page quarantine: remember the
            # damaged pages so post-recovery triage (or tests) can
            # quarantine the objects that lived there.
            for page_id in self.objects.damaged_pages:
                self.quarantine.note_damaged_page(page_id)
        return report

    def close(self):
        """Flush everything and release file handles."""
        self.pool.flush_all()
        self.log.flush()
        self.log.device.close()
        self.disk.close()
