"""The buffer cache.

The paper's applications operate "directly on the objects in a shared
cache".  This module provides that cache: a fixed number of frames over a
:class:`~repro.storage.disk.DiskManager`, with pin counts, dirty tracking,
and clock (second-chance) eviction.

The cache also carries each cached object's latch anchor: the paper says
"each object in the cache points to its own descriptor so no searching is
needed" — here each *frame* exposes its page plus a per-frame latch, and
the object layer attaches object descriptors to cached objects the same
way.
"""

from __future__ import annotations

import threading

from repro.common.errors import StorageError
from repro.common.latch import Latch
from repro.storage.page import Page


class Frame:
    """One buffer frame: a cached page plus bookkeeping."""

    __slots__ = ("page", "pin_count", "dirty", "referenced", "latch")

    def __init__(self, page):
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.referenced = True
        self.latch = Latch(name=f"frame:{page.page_id}")


class BufferPool:
    """A clock-eviction buffer cache over a disk manager.

    ``fetch`` pins; callers must ``unpin`` (``dirty=True`` if they wrote).
    Pinned frames are never evicted; when every frame is pinned and a new
    page is needed, :class:`~repro.common.errors.StorageError` is raised —
    the capacity should be sized for the workload, as EOS's was.
    """

    def __init__(self, disk, capacity=256, injector=None):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.injector = injector
        # The WAL rule: before a dirty page reaches disk, the log records
        # describing its updates must be durable.  The storage manager
        # wires this to ``log.flush``; ``None`` means no write-ahead log
        # protects this pool (bare-pool tests).
        self.wal_flush = None
        self._frames = {}
        self._clock_order = []
        self._clock_hand = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pinning --------------------------------------------------------------

    def fetch(self, page_id):
        """Pin and return the frame caching ``page_id``, reading if absent."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
            else:
                self.misses += 1
                raw = self.disk.read_page(page_id)
                frame = Frame(
                    Page.from_bytes(
                        raw,
                        page_size=self.disk.page_size,
                        default_page_id=page_id,
                    )
                )
                self._admit(page_id, frame)
            frame.pin_count += 1
            frame.referenced = True
            return frame

    def new_page(self):
        """Allocate a fresh page on disk, cache it pinned, return the frame."""
        with self._lock:
            page_id = self.disk.allocate_page()
            frame = Frame(Page(page_id, page_size=self.disk.page_size))
            frame.dirty = True
            self._admit(page_id, frame)
            frame.pin_count += 1
            return frame

    def unpin(self, page_id, dirty=False):
        """Drop one pin on ``page_id``; mark dirty if the caller wrote."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise StorageError(f"unpin without pin: page {page_id}")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    # -- eviction -------------------------------------------------------------

    def _admit(self, page_id, frame):
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        self._clock_order.append(page_id)

    def _evict_one(self):
        """Clock sweep: evict the first unpinned, unreferenced frame."""
        if not self._clock_order:
            raise StorageError("buffer pool is empty but over capacity")
        for __ in range(2 * len(self._clock_order)):
            self._clock_hand %= len(self._clock_order)
            page_id = self._clock_order[self._clock_hand]
            frame = self._frames[page_id]
            if frame.pin_count > 0:
                self._clock_hand += 1
                continue
            if frame.referenced:
                frame.referenced = False
                self._clock_hand += 1
                continue
            self._write_back(page_id, frame)
            del self._frames[page_id]
            del self._clock_order[self._clock_hand]
            self.evictions += 1
            return
        raise StorageError("all buffer frames are pinned; cannot evict")

    def _write_back(self, page_id, frame, wal_done=False):
        if frame.dirty:
            if self.wal_flush is not None and not wal_done:
                self.wal_flush()  # WAL rule: log reaches disk first
            self.disk.write_page(page_id, frame.page.to_bytes())
            frame.dirty = False

    # -- flushing -------------------------------------------------------------

    def flush_page(self, page_id):
        """Write ``page_id`` back to disk if cached and dirty."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._write_back(page_id, frame)

    def flush_all(self):
        """Write every dirty cached page back to disk."""
        with self._lock:
            dirty = sum(1 for f in self._frames.values() if f.dirty)
            if self.injector is not None:
                self.injector.pool_flush(dirty)
            if dirty and self.wal_flush is not None:
                self.wal_flush()  # one log force covers the whole pass
            for page_id, frame in self._frames.items():
                self._write_back(page_id, frame, wal_done=True)
            self.disk.sync()

    def drop_all(self):
        """Discard the entire cache WITHOUT writing back (crash simulation)."""
        with self._lock:
            self._frames.clear()
            self._clock_order.clear()
            self._clock_hand = 0

    # -- introspection ----------------------------------------------------------

    def cached_page_ids(self):
        """The page ids currently cached (for tests)."""
        with self._lock:
            return sorted(self._frames)

    def frame_for(self, page_id):
        """Peek at the frame for ``page_id`` without pinning (tests only)."""
        return self._frames.get(page_id)

    def __len__(self):
        return len(self._frames)
