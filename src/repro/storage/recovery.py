"""Restart recovery.

The strategy is repeat-history + undo-losers over physical images:

1. **Analysis** — scan the durable log; winners are transactions named by
   commit records, the already-aborted are those with abort records, and
   everything else that wrote is a loser.  Delegation records re-attribute
   each update to the transaction responsible for it at the end of the log
   (if a loser delegated its updates to a winner, those updates survive —
   exactly the delegation semantics of section 2.2).
2. **Redo** — install every after image in LSN order.  Undo performed
   before the crash was itself logged as after-image records (compensation
   records), so repeating history reproduces completed aborts too.
3. **Undo** — install the before images of loser updates in reverse LSN
   order, logging each restoration as a compensation after-image and
   finishing each loser with an abort record, which makes recovery
   idempotent across repeated crashes.

One class of transaction is exempt from undo-losers: a transaction
covered by a durable prepare record with no durable outcome is **in
doubt** — it voted commit in a distributed group commit, so this site no
longer owns the decision.  Its updates are kept (redo reinstalls them)
and it is reported in ``RecoveryReport.in_doubt``; the cluster layer
resolves it against the coordinator (or by presumed abort) after
restart.

Physical before/after images make redo and undo idempotent, which is why a
crash *during* recovery is harmless: the next restart repeats the same
installs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.log import (
    AbortRecord,
    AfterImageRecord,
    BeforeImageRecord,
    CommitRecord,
    DecisionRecord,
    DelegateRecord,
    PrepareRecord,
)


@dataclass
class RecoveryReport:
    """What a restart recovery pass did (for tests and operators)."""

    winners: set = field(default_factory=set)
    losers: set = field(default_factory=set)
    already_aborted: set = field(default_factory=set)
    redone: int = 0
    undone: int = 0
    # Prepared-but-undecided transactions: kept, not undone.  ``in_doubt``
    # holds their tids; ``in_doubt_votes`` maps each unresolved global id
    # to its (last) durable PrepareRecord so the cluster layer knows the
    # group, the coordinator to ask, and hence how to finish them.
    in_doubt: set = field(default_factory=set)
    in_doubt_votes: dict = field(default_factory=dict)

    def __repr__(self):
        doubt = ""
        if self.in_doubt:
            doubt = f", in_doubt={sorted(t.value for t in self.in_doubt)}"
        return (
            f"RecoveryReport(winners={sorted(t.value for t in self.winners)},"
            f" losers={sorted(t.value for t in self.losers)},"
            f" redone={self.redone}, undone={self.undone}{doubt})"
        )


class RecoveryManager:
    """Runs restart recovery over a log and an object store."""

    def __init__(self, log, object_store):
        self.log = log
        self.store = object_store

    def _analyze(self, records):
        winners = set()
        finished_aborts = set()
        writers = set()
        responsibility = {}
        updates = []
        prepares = []
        for record in records:
            if isinstance(record, CommitRecord):
                winners |= record.committed_tids()
            elif isinstance(record, DecisionRecord):
                # The coordinator's force-logged commit decision commits
                # its local members even if the usual commit record never
                # made it to the device before the crash.
                if record.verdict == "commit":
                    winners |= record.decided_tids()
            elif isinstance(record, AbortRecord):
                finished_aborts.add(record.tid)
            elif isinstance(record, PrepareRecord):
                prepares.append(record)
            elif isinstance(record, BeforeImageRecord):
                writers.add(record.tid)
                responsibility[record.lsn] = record.tid
                updates.append(record)
            elif isinstance(record, DelegateRecord):
                for update in updates:
                    if (
                        responsibility[update.lsn] == record.tid
                        and update.oid in record.oids
                    ):
                        responsibility[update.lsn] = record.delegatee
                writers.add(record.delegatee)
        responsible_writers = set(responsibility.values()) | writers
        in_doubt = set()
        in_doubt_votes = {}
        for record in prepares:
            undecided = record.prepared_tids() - winners - finished_aborts
            if undecided:
                in_doubt |= undecided
                in_doubt_votes[record.gid] = record
        losers = responsible_writers - winners - finished_aborts - in_doubt
        return (
            winners,
            losers,
            finished_aborts,
            updates,
            responsibility,
            in_doubt,
            in_doubt_votes,
        )

    def _install(self, oid, image):
        """Bring ``oid`` to ``image`` (create / overwrite / delete)."""
        if image is None:
            if self.store.exists(oid):
                self.store.delete(oid)
            return
        if self.store.exists(oid):
            self.store.write(oid, image)
        else:
            self.store.create(image, oid=oid)

    def recover(self):
        """Run analysis, redo, and undo; return a :class:`RecoveryReport`.

        The three phases are separate methods so the chaos harness can
        crash recovery between (and inside) them and so mutation tests
        can knock one phase out to prove the oracles notice.
        """
        records = self.log.records(durable_only=True)
        (
            winners,
            losers,
            finished,
            updates,
            responsibility,
            in_doubt,
            in_doubt_votes,
        ) = self._analyze(records)
        report = RecoveryReport(
            winners=winners,
            losers=losers,
            already_aborted=finished,
            in_doubt=in_doubt,
            in_doubt_votes=in_doubt_votes,
        )
        self._redo(records, report)
        self._undo(updates, responsibility, losers, report)
        return report

    def _redo(self, records, report):
        """Repeat history with every durable after image, in LSN order."""
        for record in records:
            if isinstance(record, AfterImageRecord):
                self._install(record.oid, record.image)
                report.redone += 1

    def _undo(self, updates, responsibility, losers, report):
        """Install losers' before images, newest first, as compensation."""
        for record in reversed(updates):
            if responsibility[record.lsn] in losers:
                self._install(record.oid, record.image)
                self.log.log_after_image(record.tid, record.oid, record.image)
                report.undone += 1
        for loser in sorted(losers, key=lambda t: t.value):
            self.log.log_abort(loser)
        if losers:
            self.log.flush()
